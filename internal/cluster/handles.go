package cluster

import (
	"harmonia/internal/protocol"
	"harmonia/internal/protocol/chain"
	"harmonia/internal/protocol/craq"
	"harmonia/internal/protocol/nopaxos"
	"harmonia/internal/protocol/pb"
	"harmonia/internal/protocol/vr"
	"harmonia/internal/simnet"
	"harmonia/internal/store"
	"harmonia/internal/wire"
)

// The handle adapters give the cluster a uniform view of the five
// replica types: message delivery, the preload hook used to warm the
// key space without driving millions of protocol writes, and the
// slot-scoped extract/install/drop operations the migration controller
// uses for a group handoff.

type pbHandle struct{ r *pb.Replica }

func (h pbHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h pbHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}
func (h pbHandle) ExtractSlot(slot int) map[wire.ObjectID]store.Object {
	return h.r.Store.ExtractSlot(slot)
}
func (h pbHandle) InstallSlot(objs map[wire.ObjectID]store.Object)    { h.r.Store.InstallSlot(objs) }
func (h pbHandle) DropSlot(slot int) int                              { return h.r.Store.DropSlot(slot) }
func (h pbHandle) ExportClients() map[uint32]protocol.ClientRecord    { return h.r.CT.Export() }
func (h pbHandle) MergeClients(recs map[uint32]protocol.ClientRecord) { h.r.CT.Merge(recs) }
func (h pbHandle) SlotCounts() []int                                  { return h.r.Store.SlotCounts() }
func (h pbHandle) GetObject(id wire.ObjectID) (store.Object, bool)    { return h.r.Store.Get(id) }

type chainHandle struct{ r *chain.Replica }

func (h chainHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h chainHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}
func (h chainHandle) ExtractSlot(slot int) map[wire.ObjectID]store.Object {
	return h.r.Store.ExtractSlot(slot)
}
func (h chainHandle) InstallSlot(objs map[wire.ObjectID]store.Object)    { h.r.Store.InstallSlot(objs) }
func (h chainHandle) DropSlot(slot int) int                              { return h.r.Store.DropSlot(slot) }
func (h chainHandle) ExportClients() map[uint32]protocol.ClientRecord    { return h.r.CT.Export() }
func (h chainHandle) MergeClients(recs map[uint32]protocol.ClientRecord) { h.r.CT.Merge(recs) }
func (h chainHandle) SlotCounts() []int                                  { return h.r.Store.SlotCounts() }
func (h chainHandle) GetObject(id wire.ObjectID) (store.Object, bool)    { return h.r.Store.Get(id) }

type craqHandle struct{ r *craq.Replica }

func (h craqHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h craqHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.PreloadClean(id, value, 0)
}
func (h craqHandle) ExtractSlot(slot int) map[wire.ObjectID]store.Object {
	out := make(map[wire.ObjectID]store.Object)
	for id, v := range h.r.ExtractSlotClean(slot) {
		out[id] = store.Object{Value: v.Value, Seq: wire.Seq{N: v.N}}
	}
	return out
}
func (h craqHandle) InstallSlot(objs map[wire.ObjectID]store.Object) {
	// Version 0 keeps the destination's in-order apply guard (lastVer)
	// untouched, mirroring the epoch-0 neutering of the store-backed
	// protocols.
	for id, o := range objs {
		h.r.PreloadClean(id, o.Value, 0)
	}
}
func (h craqHandle) DropSlot(slot int) int { return h.r.DropSlot(slot) }
func (h craqHandle) ExportClients() map[uint32]protocol.ClientRecord {
	return h.r.ClientTable().Export()
}
func (h craqHandle) MergeClients(recs map[uint32]protocol.ClientRecord) {
	h.r.ClientTable().Merge(recs)
}
func (h craqHandle) SlotCounts() []int { return h.r.SlotCounts() }
func (h craqHandle) GetObject(id wire.ObjectID) (store.Object, bool) {
	// CRAQ keeps explicit clean/dirty version chains rather than a
	// store; read the newest COMMITTED version through the same
	// slot-scoped view the migration drain uses.
	o, ok := h.r.ExtractSlotClean(wire.SlotOf(id))[id]
	if !ok {
		return store.Object{}, false
	}
	return store.Object{Value: o.Value, Seq: wire.Seq{N: o.N}}, true
}

type vrHandle struct{ r *vr.Replica }

func (h vrHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h vrHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}
func (h vrHandle) ExtractSlot(slot int) map[wire.ObjectID]store.Object {
	return h.r.Store.ExtractSlot(slot)
}
func (h vrHandle) InstallSlot(objs map[wire.ObjectID]store.Object)    { h.r.Store.InstallSlot(objs) }
func (h vrHandle) DropSlot(slot int) int                              { return h.r.Store.DropSlot(slot) }
func (h vrHandle) ExportClients() map[uint32]protocol.ClientRecord    { return h.r.CT.Export() }
func (h vrHandle) MergeClients(recs map[uint32]protocol.ClientRecord) { h.r.CT.Merge(recs) }
func (h vrHandle) SlotCounts() []int                                  { return h.r.Store.SlotCounts() }
func (h vrHandle) GetObject(id wire.ObjectID) (store.Object, bool)    { return h.r.Store.Get(id) }

type nopaxosHandle struct{ r *nopaxos.Replica }

func (h nopaxosHandle) Recv(from simnet.NodeID, msg simnet.Message) { h.r.Recv(from, msg) }
func (h nopaxosHandle) Preload(id wire.ObjectID, value []byte, seq wire.Seq) {
	h.r.Store.Seed(id, value, seq)
}
func (h nopaxosHandle) ExtractSlot(slot int) map[wire.ObjectID]store.Object {
	return h.r.Store.ExtractSlot(slot)
}
func (h nopaxosHandle) InstallSlot(objs map[wire.ObjectID]store.Object)    { h.r.Store.InstallSlot(objs) }
func (h nopaxosHandle) DropSlot(slot int) int                              { return h.r.Store.DropSlot(slot) }
func (h nopaxosHandle) ExportClients() map[uint32]protocol.ClientRecord    { return h.r.CT.Export() }
func (h nopaxosHandle) MergeClients(recs map[uint32]protocol.ClientRecord) { h.r.CT.Merge(recs) }
func (h nopaxosHandle) SlotCounts() []int                                  { return h.r.Store.SlotCounts() }
func (h nopaxosHandle) GetObject(id wire.ObjectID) (store.Object, bool)    { return h.r.Store.Get(id) }
