package cluster

import (
	"harmonia/internal/protocol"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
)

// controller is the cluster's configuration service (the role Chubby
// or ZooKeeper plays in a real deployment, and the control plane of
// §5.3): it periodically grants the fast-read lease for the active
// switch epoch and orchestrates the agreement on switch replacement —
// every replica of a group must acknowledge revocation of the old
// epoch before the new switch may forward that group's writes. With a
// sharded cluster the agreement is group-scoped: each replica group
// revokes, acknowledges, and resumes independently.
type controller struct {
	c *Cluster

	nextRevokeID uint64
	pending      map[uint64]*revocation
}

type revocation struct {
	acked map[int]bool
	need  int
	done  func()
}

func newController(c *Cluster) *controller {
	return &controller{c: c, pending: make(map[uint64]*revocation)}
}

// Recv implements simnet.Handler: the controller only consumes
// revocation acknowledgments.
func (ct *controller) Recv(from simnet.NodeID, msg simnet.Message) {
	ack, ok := msg.(protocol.LeaseRevokeAck)
	if !ok {
		return
	}
	rev, ok := ct.pending[ack.ID]
	if !ok {
		return
	}
	rev.acked[ack.Replica] = true
	if len(rev.acked) >= rev.need {
		delete(ct.pending, ack.ID)
		rev.done()
	}
}

// grantGroupLeases issues (and keeps renewing) the fast-read lease for
// epoch to every replica of group g. Renewal stops automatically when
// a newer epoch takes over.
func (ct *controller) grantGroupLeases(g int, epoch uint32) {
	if epoch != ct.c.epoch {
		return // superseded
	}
	d := ct.c.cfg.LeaseDuration
	expiry := ct.c.eng.Now() + sim.Time(d)
	for _, addr := range ct.c.groups[g].addrs() {
		ct.c.net.Send(controllerAddr, addr, protocol.LeaseGrant{Epoch: epoch, Expiry: expiry})
	}
	ct.c.eng.After(d/2, func() { ct.grantGroupLeases(g, epoch) })
}

// revokeThen demands revocation of every lease ≤ epoch from group g's
// replicas and calls done once all live members acknowledged. Crashed
// replicas are excluded: their leases expire on their own and they
// cannot serve reads anyway.
func (ct *controller) revokeThen(g int, epoch uint32, done func()) {
	ct.nextRevokeID++
	id := ct.nextRevokeID
	addrs := ct.c.groups[g].addrs()
	live := 0
	for _, addr := range addrs {
		if !ct.c.net.IsDown(addr) {
			live++
		}
	}
	rev := &revocation{acked: make(map[int]bool), need: live, done: done}
	ct.pending[id] = rev
	for _, addr := range addrs {
		if !ct.c.net.IsDown(addr) {
			ct.c.net.Send(controllerAddr, addr, protocol.LeaseRevoke{
				Epoch: epoch, AckTo: controllerAddr, ID: id,
			})
		}
	}
	if live == 0 {
		delete(ct.pending, id)
		done()
	}
}
