package cluster

import (
	"harmonia/internal/protocol"
	"harmonia/internal/sim"
	"harmonia/internal/simnet"
)

// controller is the rack's configuration service (the role Chubby or
// ZooKeeper plays in a real deployment, and the control plane of
// §5.3): it periodically grants the fast-read lease for each group's
// active switch epoch and orchestrates the agreement on switch
// replacement — every replica of a group must acknowledge revocation
// of the old epoch before the new switch may forward that group's
// writes. The agreement runs per (switch, group) pair: each replica
// group revokes, acknowledges, and resumes independently, within its
// own switch's epoch/lease domain, and the controller credits every
// revoke sent and ack received to that switch's agreement-cost
// counters in the rack — the §5.3 cost is therefore proportional to
// the replaced switch's groups, never to the whole rack.
type controller struct {
	c *Cluster

	nextRevokeID uint64
	pending      map[uint64]*revocation
}

type revocation struct {
	acked map[int]bool
	need  int
	g     int // replica group the agreement covers
	sw    int // switch domain the agreement belongs to (stats)
	done  func()
}

func newController(c *Cluster) *controller {
	return &controller{c: c, pending: make(map[uint64]*revocation)}
}

// Recv implements simnet.Handler: the controller only consumes
// revocation acknowledgments.
func (ct *controller) Recv(from simnet.NodeID, msg simnet.Message) {
	ack, ok := msg.(protocol.LeaseRevokeAck)
	if !ok {
		return
	}
	rev, ok := ct.pending[ack.ID]
	if !ok {
		return
	}
	if !rev.acked[ack.Replica] {
		rev.acked[ack.Replica] = true
		ct.c.rack.NoteAck(rev.sw)
	}
	if len(rev.acked) >= rev.need {
		delete(ct.pending, ack.ID)
		rev.done()
	}
}

// grantGroupLeases issues (and keeps renewing) the fast-read lease for
// epoch to every replica of group g. The lease names the epoch of the
// group's OWN switch; renewal stops automatically when a newer epoch
// takes over that switch's domain.
func (ct *controller) grantGroupLeases(g int, epoch uint32) {
	ct.grantLeases(g, epoch, ct.c.groups[g].leaseGen)
}

// grantLeases is the renewal chain body: each firing re-checks that
// the epoch is still that switch's current one AND that the group's
// lease generation has not moved. The generation stops a stale chain
// dead when the membership changed at the SAME epoch (respec,
// retirement) — without it, two chains would renew in parallel and the
// old one would keep granting leases to members that left the group.
func (ct *controller) grantLeases(g int, epoch uint32, gen uint64) {
	grp := ct.c.groups[g]
	if gen != grp.leaseGen || !ct.c.rack.Live(g) {
		return // membership changed: a newer chain covers the new set
	}
	if epoch != ct.c.rack.Epoch(ct.c.rack.SwitchOfGroup(g)) {
		return // superseded
	}
	d := ct.c.cfg.LeaseDuration
	expiry := ct.c.eng.Now() + sim.Time(d)
	for _, addr := range grp.addrs() {
		ct.c.net.Send(controllerAddr, addr, protocol.LeaseGrant{Epoch: epoch, Expiry: expiry})
	}
	ct.c.eng.After(d/2, func() { ct.grantLeases(g, epoch, gen) })
}

// revokeThen demands revocation of every lease ≤ epoch from group g's
// replicas and calls done once all live members acknowledged. Crashed
// replicas are excluded: their leases expire on their own and they
// cannot serve reads anyway — which is why a replacement's agreement
// cost is exactly the live replicas of the replaced switch's groups.
func (ct *controller) revokeThen(g int, epoch uint32, done func()) {
	ct.nextRevokeID++
	id := ct.nextRevokeID
	sw := ct.c.rack.SwitchOfGroup(g)
	addrs := ct.c.groups[g].addrs()
	live := 0
	for _, addr := range addrs {
		if !ct.c.net.IsDown(addr) {
			live++
		}
	}
	rev := &revocation{acked: make(map[int]bool), need: live, g: g, sw: sw, done: done}
	ct.pending[id] = rev
	ct.c.rack.NoteRevokes(sw, live)
	for _, addr := range addrs {
		if !ct.c.net.IsDown(addr) {
			ct.c.net.Send(controllerAddr, addr, protocol.LeaseRevoke{
				Epoch: epoch, AckTo: controllerAddr, ID: id,
			})
		}
	}
	if live == 0 {
		delete(ct.pending, id)
		done()
	}
}

// replicaDown re-evaluates every pending revocation of group g after
// replica i crashed: a dead replica can never serve fast reads, so its
// missing ack must not block the agreement. Without this, a replica
// crashing inside the revoke → ack window (one link latency wide)
// would wedge its group's switch replacement forever — the scheduler
// never installed even though the group's survivors are fine.
//
// The crash is recorded as a SYNTHETIC ack rather than a quorum
// decrement: if the replica's real ack was already in flight when it
// crashed (simnet delivers in-flight messages regardless of the
// sender's later death), a decrement PLUS the arriving ack would
// double-credit it and complete the agreement one live revocation
// short — a live replica's old-epoch lease would survive into the new
// switch's tenure. The acked-map dedup covers both orders.
func (ct *controller) replicaDown(g, i int) {
	for id, rev := range ct.pending {
		if rev.g != g || rev.acked[i] {
			continue
		}
		rev.acked[i] = true
		if len(rev.acked) >= rev.need {
			delete(ct.pending, id)
			rev.done()
		}
	}
}
