// Package workload generates the key-access patterns used by the
// paper's evaluation: uniform and zipfian (θ = 0.9) distributions over
// a fixed key space, mixed with a configurable write ratio (§9.1: one
// million objects, 5% writes by default).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator yields object indexes in [0, N).
type Generator interface {
	// Next returns the next key index.
	Next() int
	// N returns the key-space size.
	N() int
}

// Uniform draws keys uniformly.
type Uniform struct {
	n   int
	rng *rand.Rand
}

// NewUniform builds a uniform generator over n keys.
func NewUniform(n int, rng *rand.Rand) *Uniform {
	if n <= 0 {
		panic("workload: key space must be positive")
	}
	return &Uniform{n: n, rng: rng}
}

// Next implements Generator.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// N implements Generator.
func (u *Uniform) N() int { return u.n }

// Zipfian is a YCSB-style scrambled zipfian generator. Unlike
// math/rand's Zipf (which requires s > 1), it supports the θ < 1
// exponents used by storage benchmarks — the paper's skewed workload
// is zipf-0.9.
//
// The construction follows Gray et al.'s "Quickly Generating
// Billion-Record Synthetic Databases" rejection-free method, then
// scrambles rank order with an FNV-style hash so that popular keys are
// spread across the key space.
type Zipfian struct {
	n        int
	theta    float64
	alpha    float64
	zetan    float64
	eta      float64
	zeta2    float64
	rng      *rand.Rand
	scramble bool
}

// NewZipfian builds a zipfian generator over n keys with exponent
// theta in (0, 1).
func NewZipfian(n int, theta float64, rng *rand.Rand) *Zipfian {
	if n <= 0 {
		panic("workload: key space must be positive")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("workload: zipfian theta %v out of (0,1)", theta))
	}
	z := &Zipfian{n: n, theta: theta, rng: rng, scramble: true}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// zeta computes the generalized harmonic number H_{n,theta}.
func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if !z.scramble {
		return rank
	}
	return ZipfKeyOfRank(z.n, rank)
}

// NewZipfianTheta builds a scrambled zipfian generator for any
// exponent theta > 0 (theta ≠ 1): Gray et al.'s method for the θ < 1
// range storage benchmarks use, math/rand's rejection-inversion
// sampler for the heavy-tailed θ > 1 range (e.g. the zipf-1.2 hot-spot
// workload, where the head ranks dominate enough that placement makes
// or breaks aggregate throughput). Both scramble rank order with the
// same finalizer, so ZipfKeyOfRank predicts the hot keys either way.
func NewZipfianTheta(n int, theta float64, rng *rand.Rand) Generator {
	if theta > 1 {
		if n <= 0 {
			panic("workload: key space must be positive")
		}
		return &heavyZipf{n: n, z: rand.NewZipf(rng, theta, 1, uint64(n-1))}
	}
	return NewZipfian(n, theta, rng)
}

// heavyZipf samples ranks from math/rand's Zipf (s > 1) and scrambles
// them the same way Zipfian does.
type heavyZipf struct {
	n int
	z *rand.Zipf
}

// Next implements Generator.
func (h *heavyZipf) Next() int { return ZipfKeyOfRank(h.n, int(h.z.Uint64())) }

// N implements Generator.
func (h *heavyZipf) N() int { return h.n }

// ZipfKeyOfRank returns the key index a scrambled zipfian over n keys
// emits for popularity rank r (rank 0 is the hottest). The scramble is
// a fixed splitmix64 finalizer — YCSB's "scrambled zipfian" — so the
// hot keys of a key space are deterministic and independent of the RNG
// seed, which is what lets a rebalancer predict where the heat is.
func ZipfKeyOfRank(n, rank int) int {
	h := uint64(rank) + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}

// N implements Generator.
func (z *Zipfian) N() int { return z.n }

// Op is one generated operation.
type Op struct {
	Key     int
	IsWrite bool
}

// Mix couples a key generator with a read/write ratio.
type Mix struct {
	Keys       Generator
	WriteRatio float64 // fraction of operations that are writes
	rng        *rand.Rand
}

// NewMix builds an operation mix.
func NewMix(keys Generator, writeRatio float64, rng *rand.Rand) *Mix {
	if writeRatio < 0 || writeRatio > 1 {
		panic("workload: write ratio out of [0,1]")
	}
	return &Mix{Keys: keys, WriteRatio: writeRatio, rng: rng}
}

// Next returns the next operation.
func (m *Mix) Next() Op {
	return Op{Key: m.Keys.Next(), IsWrite: m.rng.Float64() < m.WriteRatio}
}

// KeyName formats a key index as the canonical string key used by the
// client library ("obj%08d"), so a key space maps onto distinct
// 32-bit object IDs with negligible collision probability.
func KeyName(i int) string { return fmt.Sprintf("obj%08d", i) }

// Apportion splits total indivisible units (clients, slots) across the
// weights by the largest-remainder method: every index first gets the
// floor of its exact quota total·wᵢ/Σw, then the leftover units go to
// the largest fractional remainders, lowest index first on ties. The
// result always sums to total, and equal weights reproduce the
// historical even split (floor share everywhere, the first total mod n
// indexes carrying one extra) — which is what keeps a uniform cluster's
// client-pool split bit-compatible with the pre-weighted code.
// Non-positive and non-finite weights count as zero; if no weight is
// positive, the split falls back to uniform.
func Apportion(total int, weights []float64) []int {
	return ApportionMin(total, weights, nil)
}

// ApportionMin is Apportion with per-index floors: index i never
// receives fewer than min[i] units (nil means no floors). The caller
// guarantees sum(min) ≤ total. The floors serve layouts where every
// index must stay represented — e.g. every replica group owning at
// least one routing slot — while the remaining units still follow the
// weights. Deterministic: every rounding tie resolves to the lowest
// index.
func ApportionMin(total int, weights []float64, min []int) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	var sum float64
	w := make([]float64, n)
	for i, x := range weights {
		if x > 0 && !math.IsInf(x, 1) {
			w[i] = x
			sum += x
		}
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1
		}
		sum = float64(n)
	}
	floor := func(i int) int {
		if min == nil || i >= len(min) {
			return 0
		}
		return min[i]
	}
	quota := make([]float64, n)
	given := 0
	for i := range out {
		// Ratio first: weights near MaxFloat64 would overflow the
		// product total·wᵢ to +Inf, and int(+Inf) poisons the split.
		quota[i] = float64(total) * (w[i] / sum)
		out[i] = int(quota[i])
		if out[i] < floor(i) {
			out[i] = floor(i)
		}
		given += out[i]
	}
	for given > total {
		// The floors oversubscribed the total: claw back from the
		// index furthest ABOVE its exact quota that can still give.
		best := -1
		var bestOver float64
		for i := range out {
			if out[i] <= floor(i) {
				continue
			}
			over := float64(out[i]) - quota[i]
			if best == -1 || over > bestOver {
				best, bestOver = i, over
			}
		}
		out[best]--
		given--
	}
	for given < total {
		// Largest remainder: the index furthest BELOW its exact quota
		// takes the next unit (an index that already took one falls
		// negative and cannot win while a positive remainder exists).
		best := -1
		var bestLag float64
		for i := range out {
			lag := quota[i] - float64(out[i])
			if best == -1 || lag > bestLag {
				best, bestLag = i, lag
			}
		}
		out[best]++
		given++
	}
	return out
}

// WeightedIndex draws indexes in [0, len(weights)) with probability
// proportional to the weights — the open-loop analogue of Apportion's
// client-pool split. It is table-driven: the weights are apportioned
// over a fixed number of units (largest-remainder, the same arithmetic
// that sizes pinned closed-loop pools and slot shards) and each draw
// picks a unit uniformly, so Next is O(1) with zero allocations and
// the long-run offered split converges to the apportioned ratios.
// Every index with positive weight holds at least one unit, so no
// shard is starved outright; zero-weight indexes are never drawn
// (unless no weight is positive, in which case the split is uniform —
// Apportion's own fallback).
type WeightedIndex struct {
	table []uint16
	rng   *rand.Rand
}

// weightedIndexUnits is the sampler's resolution: the worst-case
// relative error of any index's drawn share is 1/4096 ≈ 0.02%.
const weightedIndexUnits = 1 << 12

// NewWeightedIndex builds a sampler over the weights.
func NewWeightedIndex(weights []float64, rng *rand.Rand) *WeightedIndex {
	n := len(weights)
	if n == 0 {
		panic("workload: WeightedIndex needs at least one weight")
	}
	if n > weightedIndexUnits {
		panic(fmt.Sprintf("workload: WeightedIndex supports at most %d indexes", weightedIndexUnits))
	}
	// Floors keep every positive-weight index drawable even when its
	// exact quota rounds to zero units.
	min := make([]int, n)
	anyPos := false
	for i, w := range weights {
		if w > 0 && !math.IsInf(w, 1) {
			min[i] = 1
			anyPos = true
		}
	}
	if !anyPos {
		for i := range min {
			min[i] = 1
		}
	}
	shares := ApportionMin(weightedIndexUnits, weights, min)
	w := &WeightedIndex{table: make([]uint16, 0, weightedIndexUnits), rng: rng}
	for i, s := range shares {
		for ; s > 0; s-- {
			w.table = append(w.table, uint16(i))
		}
	}
	return w
}

// Next draws one index.
func (w *WeightedIndex) Next() int { return int(w.table[w.rng.Intn(len(w.table))]) }

// ServiceRate estimates a replica group's saturated service rate in
// ops/second — the first-order calibration the client-side router uses
// to give a 7-replica Harmonia group proportionally more of a pinned
// closed-loop pool (and more routing slots) than a 3-replica one.
//
// The model mirrors the §6.1 scalability argument: every replica
// applies every write, so the write share loads each server in full,
// while reads either spread across all n replicas (Harmonia fast
// reads, CRAQ's per-replica clean reads) or all land on one designated
// server (the unassisted protocols' tail/primary/leader). The busiest
// server's utilization reaches 1 at
//
//	rate · [ writeRatio/writeRate + readShare·(1-writeRatio)/readRate ] = 1
//
// with readShare = 1/n when reads spread and 1 otherwise. readRate and
// writeRate are one server's calibrated ops/second for each class.
// Only ratios between groups matter to the router, but the absolute
// value is a real ops/second estimate under the model.
func ServiceRate(replicas int, spreadReads bool, writeRatio, readRate, writeRate float64) float64 {
	if replicas < 1 {
		replicas = 1
	}
	if readRate <= 0 || writeRate <= 0 {
		return 0
	}
	if writeRatio < 0 {
		writeRatio = 0
	}
	if writeRatio > 1 {
		writeRatio = 1
	}
	readShare := 1 - writeRatio
	if spreadReads {
		readShare /= float64(replicas)
	}
	perOp := writeRatio/writeRate + readShare/readRate
	if perOp <= 0 {
		// A read-only ratio on a spread group still costs its 1/n read
		// share; perOp can only vanish when writeRatio is 0 and the
		// read share underflowed, which no finite calibration produces.
		return math.Inf(1)
	}
	return 1 / perOp
}
