package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestUniformCoversSpace(t *testing.T) {
	g := NewUniform(100, rand.New(rand.NewSource(1)))
	seen := make([]bool, 100)
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	for k, s := range seen {
		if !s {
			t.Fatalf("key %d never drawn in 10k samples", k)
		}
	}
}

func TestUniformIsRoughlyFlat(t *testing.T) {
	g := NewUniform(10, rand.New(rand.NewSource(2)))
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for k, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("key %d frequency %v, want ~0.1", k, frac)
		}
	}
}

func TestZipfianRange(t *testing.T) {
	g := NewZipfian(1000, 0.9, rand.New(rand.NewSource(3)))
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	// With θ=0.9 the most popular key should take a large share and
	// the distribution must be far from flat.
	g := NewZipfian(1000, 0.9, rand.New(rand.NewSource(4)))
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := float64(freqs[0]) / n
	if top < 0.05 {
		t.Fatalf("hottest key has share %v, want ≥ 5%% under zipf-0.9", top)
	}
	// Top-10 share should dominate a uniform draw's 1%.
	top10 := 0
	for i := 0; i < 10 && i < len(freqs); i++ {
		top10 += freqs[i]
	}
	if share := float64(top10) / n; share < 0.2 {
		t.Fatalf("top-10 share %v, want ≥ 20%%", share)
	}
}

func TestZipfianScrambleSpreadsHotKeys(t *testing.T) {
	// The hottest keys must not be clustered at small indexes.
	g := NewZipfian(1000, 0.9, rand.New(rand.NewSource(5)))
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		counts[g.Next()]++
	}
	hottest, hc := 0, 0
	for k, c := range counts {
		if c > hc {
			hottest, hc = k, c
		}
	}
	if hottest == 0 {
		t.Fatal("hottest key at index 0 suggests unscrambled ranks")
	}
}

func TestZipfianThetaHeavyTail(t *testing.T) {
	// θ > 1 routes to the rejection-inversion sampler; the result must
	// stay in range, be markedly MORE skewed than θ = 0.9, and share
	// the scrambled rank order (rank 0 lands on the same key).
	g := NewZipfianTheta(1000, 1.2, rand.New(rand.NewSource(6)))
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		k := g.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	hottest, hc := 0, 0
	for k, c := range counts {
		if c > hc {
			hottest, hc = k, c
		}
	}
	if share := float64(hc) / n; share < 0.2 {
		t.Fatalf("hottest key share %v under zipf-1.2, want ≥ 20%%", share)
	}
	if want := ZipfKeyOfRank(1000, 0); hottest != want {
		t.Fatalf("hottest key %d, want scrambled rank 0 = %d", hottest, want)
	}
	// θ ≤ 1 must keep returning the Gray-method generator.
	if _, ok := NewZipfianTheta(1000, 0.9, rand.New(rand.NewSource(7))).(*Zipfian); !ok {
		t.Fatal("theta ≤ 1 no longer uses the Gray construction")
	}
}

func TestZetaMatchesDirectSum(t *testing.T) {
	want := 1 + 1/math.Pow(2, 0.9) + 1/math.Pow(3, 0.9)
	if got := zeta(3, 0.9); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zeta = %v, want %v", got, want)
	}
}

func TestMixWriteRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMix(NewUniform(10, rng), 0.05, rng)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Next().IsWrite {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.04 || frac > 0.06 {
		t.Fatalf("write fraction %v, want ~0.05", frac)
	}
}

func TestMixExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m0 := NewMix(NewUniform(10, rng), 0, rng)
	m1 := NewMix(NewUniform(10, rng), 1, rng)
	for i := 0; i < 1000; i++ {
		if m0.Next().IsWrite {
			t.Fatal("write in read-only mix")
		}
		if !m1.Next().IsWrite {
			t.Fatal("read in write-only mix")
		}
	}
}

func TestKeyNameDistinct(t *testing.T) {
	if KeyName(1) == KeyName(2) {
		t.Fatal("key names collide")
	}
	if KeyName(42) != "obj00000042" {
		t.Fatalf("KeyName(42) = %q", KeyName(42))
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewUniform(0, rand.New(rand.NewSource(1))) },
		func() { NewZipfian(0, 0.9, rand.New(rand.NewSource(1))) },
		func() { NewZipfian(10, 1.5, rand.New(rand.NewSource(1))) },
		func() { NewMix(NewUniform(1, rand.New(rand.NewSource(1))), 2, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
