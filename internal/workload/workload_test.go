package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestUniformCoversSpace(t *testing.T) {
	g := NewUniform(100, rand.New(rand.NewSource(1)))
	seen := make([]bool, 100)
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
		seen[k] = true
	}
	for k, s := range seen {
		if !s {
			t.Fatalf("key %d never drawn in 10k samples", k)
		}
	}
}

func TestUniformIsRoughlyFlat(t *testing.T) {
	g := NewUniform(10, rand.New(rand.NewSource(2)))
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	for k, c := range counts {
		frac := float64(c) / n
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("key %d frequency %v, want ~0.1", k, frac)
		}
	}
}

func TestZipfianRange(t *testing.T) {
	g := NewZipfian(1000, 0.9, rand.New(rand.NewSource(3)))
	for i := 0; i < 10000; i++ {
		k := g.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestZipfianIsSkewed(t *testing.T) {
	// With θ=0.9 the most popular key should take a large share and
	// the distribution must be far from flat.
	g := NewZipfian(1000, 0.9, rand.New(rand.NewSource(4)))
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next()]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := float64(freqs[0]) / n
	if top < 0.05 {
		t.Fatalf("hottest key has share %v, want ≥ 5%% under zipf-0.9", top)
	}
	// Top-10 share should dominate a uniform draw's 1%.
	top10 := 0
	for i := 0; i < 10 && i < len(freqs); i++ {
		top10 += freqs[i]
	}
	if share := float64(top10) / n; share < 0.2 {
		t.Fatalf("top-10 share %v, want ≥ 20%%", share)
	}
}

func TestZipfianScrambleSpreadsHotKeys(t *testing.T) {
	// The hottest keys must not be clustered at small indexes.
	g := NewZipfian(1000, 0.9, rand.New(rand.NewSource(5)))
	counts := map[int]int{}
	for i := 0; i < 100000; i++ {
		counts[g.Next()]++
	}
	hottest, hc := 0, 0
	for k, c := range counts {
		if c > hc {
			hottest, hc = k, c
		}
	}
	if hottest == 0 {
		t.Fatal("hottest key at index 0 suggests unscrambled ranks")
	}
}

func TestZipfianThetaHeavyTail(t *testing.T) {
	// θ > 1 routes to the rejection-inversion sampler; the result must
	// stay in range, be markedly MORE skewed than θ = 0.9, and share
	// the scrambled rank order (rank 0 lands on the same key).
	g := NewZipfianTheta(1000, 1.2, rand.New(rand.NewSource(6)))
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		k := g.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	hottest, hc := 0, 0
	for k, c := range counts {
		if c > hc {
			hottest, hc = k, c
		}
	}
	if share := float64(hc) / n; share < 0.2 {
		t.Fatalf("hottest key share %v under zipf-1.2, want ≥ 20%%", share)
	}
	if want := ZipfKeyOfRank(1000, 0); hottest != want {
		t.Fatalf("hottest key %d, want scrambled rank 0 = %d", hottest, want)
	}
	// θ ≤ 1 must keep returning the Gray-method generator.
	if _, ok := NewZipfianTheta(1000, 0.9, rand.New(rand.NewSource(7))).(*Zipfian); !ok {
		t.Fatal("theta ≤ 1 no longer uses the Gray construction")
	}
}

func TestZetaMatchesDirectSum(t *testing.T) {
	want := 1 + 1/math.Pow(2, 0.9) + 1/math.Pow(3, 0.9)
	if got := zeta(3, 0.9); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zeta = %v, want %v", got, want)
	}
}

func TestMixWriteRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMix(NewUniform(10, rng), 0.05, rng)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if m.Next().IsWrite {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.04 || frac > 0.06 {
		t.Fatalf("write fraction %v, want ~0.05", frac)
	}
}

func TestMixExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m0 := NewMix(NewUniform(10, rng), 0, rng)
	m1 := NewMix(NewUniform(10, rng), 1, rng)
	for i := 0; i < 1000; i++ {
		if m0.Next().IsWrite {
			t.Fatal("write in read-only mix")
		}
		if !m1.Next().IsWrite {
			t.Fatal("read in write-only mix")
		}
	}
}

func TestKeyNameDistinct(t *testing.T) {
	if KeyName(1) == KeyName(2) {
		t.Fatal("key names collide")
	}
	if KeyName(42) != "obj00000042" {
		t.Fatalf("KeyName(42) = %q", KeyName(42))
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewUniform(0, rand.New(rand.NewSource(1))) },
		func() { NewZipfian(0, 0.9, rand.New(rand.NewSource(1))) },
		func() { NewZipfian(10, 1.5, rand.New(rand.NewSource(1))) },
		func() { NewMix(NewUniform(1, rand.New(rand.NewSource(1))), 2, nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGroupSpecApportionSumsAndUniformCompat(t *testing.T) {
	cases := []struct {
		total   int
		weights []float64
	}{
		{64, []float64{1, 1, 1}},
		{64, []float64{1, 1, 1, 1}},
		{7, []float64{3, 1}},
		{256, []float64{6.9, 1.05, 1.05}},
		{5, []float64{0, 0, 0}},      // degenerate: falls back to uniform
		{5, []float64{-1, 2, 1e308}}, // negative ignored, huge kept finite
		{3, []float64{1e-12, 1, 1}},  // tiny weight may get zero units
		{0, []float64{1, 2}},         // nothing to split
	}
	for _, tc := range cases {
		got := Apportion(tc.total, tc.weights)
		if len(got) != len(tc.weights) {
			t.Fatalf("Apportion(%d, %v) len = %d", tc.total, tc.weights, len(got))
		}
		sum := 0
		for _, n := range got {
			if n < 0 {
				t.Fatalf("Apportion(%d, %v) = %v: negative share", tc.total, tc.weights, got)
			}
			sum += n
		}
		if sum != tc.total {
			t.Fatalf("Apportion(%d, %v) = %v sums to %d", tc.total, tc.weights, got, sum)
		}
	}
	// Equal weights reproduce the historical even split: floor share
	// everywhere, first total%n indexes carry the extra unit.
	for _, n := range []int{1, 2, 3, 5, 8} {
		for total := 0; total <= 40; total++ {
			w := make([]float64, n)
			for i := range w {
				w[i] = 2.5
			}
			got := Apportion(total, w)
			for i, share := range got {
				want := total / n
				if i < total%n {
					want++
				}
				if share != want {
					t.Fatalf("Apportion(%d, uniform %d) = %v, index %d want %d", total, n, got, i, want)
				}
			}
		}
	}
}

func TestGroupSpecApportionFollowsWeights(t *testing.T) {
	got := Apportion(100, []float64{7, 3})
	if got[0] != 70 || got[1] != 30 {
		t.Fatalf("Apportion(100, 7:3) = %v", got)
	}
	got = Apportion(10, []float64{2, 1, 1})
	if got[0] != 5 || got[1] != 3 || got[2] != 2 {
		// quotas 5, 2.5, 2.5: tie on the remainder goes to the lower index
		t.Fatalf("Apportion(10, 2:1:1) = %v", got)
	}
}

func TestGroupSpecServiceRateModel(t *testing.T) {
	const rr, wr = 0.92e6, 0.80e6
	// Read-only, reads spread: rate scales linearly with replicas.
	r3 := ServiceRate(3, true, 0, rr, wr)
	r7 := ServiceRate(7, true, 0, rr, wr)
	if r3 <= 0 || r7/r3 < 7.0/3-1e-9 || r7/r3 > 7.0/3+1e-9 {
		t.Fatalf("spread read-only rates: 3→%v 7→%v", r3, r7)
	}
	// Unspread reads: replica count is irrelevant.
	if a, b := ServiceRate(3, false, 0.05, rr, wr), ServiceRate(7, false, 0.05, rr, wr); a != b {
		t.Fatalf("unspread rates differ: %v vs %v", a, b)
	}
	// Writes always load every server: write-only rate is writeRate
	// regardless of spreading or replica count.
	if got := ServiceRate(5, true, 1, rr, wr); got < wr-1 || got > wr+1 {
		t.Fatalf("write-only rate = %v, want ≈%v", got, wr)
	}
	// More replicas never slows a group down; spreading never hurts.
	prev := 0.0
	for n := 1; n <= 9; n++ {
		got := ServiceRate(n, true, 0.05, rr, wr)
		if got < prev {
			t.Fatalf("rate decreased at %d replicas: %v < %v", n, got, prev)
		}
		if unspread := ServiceRate(n, false, 0.05, rr, wr); got < unspread-1e-6 {
			t.Fatalf("spreading hurt at %d replicas: %v < %v", n, got, unspread)
		}
		prev = got
	}
	// Degenerate calibrations are reported as unusable, not garbage.
	if got := ServiceRate(3, true, 0.05, 0, wr); got != 0 {
		t.Fatalf("zero read rate → %v, want 0", got)
	}
}

func TestGroupSpecApportionMinFloors(t *testing.T) {
	// Floors hold even against dominant weights, and the clawback
	// takes back from the most over-quota index.
	got := ApportionMin(10, []float64{1e9, 1, 1, 1}, []int{1, 1, 1, 1})
	if got[0] != 7 || got[1] != 1 || got[2] != 1 || got[3] != 1 {
		t.Fatalf("ApportionMin(10, dominant, ones) = %v", got)
	}
	// Without floors, ApportionMin is exactly Apportion.
	for _, tc := range []struct {
		total   int
		weights []float64
	}{
		{100, []float64{7, 3}},
		{10, []float64{2, 1, 1}},
		{5, []float64{0, 0}},
	} {
		a := Apportion(tc.total, tc.weights)
		b := ApportionMin(tc.total, tc.weights, nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Apportion(%d,%v)=%v but ApportionMin nil-floors=%v", tc.total, tc.weights, a, b)
			}
		}
	}
	// Sum with floors is always exact.
	got = ApportionMin(256, []float64{1e-9, 5, 3, 1e-9}, []int{1, 1, 1, 1})
	sum := 0
	for _, n := range got {
		sum += n
	}
	if sum != 256 || got[0] != 1 || got[3] != 1 {
		t.Fatalf("ApportionMin floors = %v (sum %d)", got, sum)
	}
}

// TestWeightedIndexFollowsWeights: the table-driven sampler realizes
// the apportioned ratios — a 2:1 weight pair draws index 0 about twice
// as often as index 1.
func TestWeightedIndexFollowsWeights(t *testing.T) {
	w := NewWeightedIndex([]float64{2, 1}, rand.New(rand.NewSource(7)))
	counts := [2]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		counts[w.Next()]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.85 || ratio > 2.15 {
		t.Fatalf("2:1 weights drew %v (ratio %.3f)", counts, ratio)
	}
}

// TestWeightedIndexZeroWeightNeverDrawn: a zero-weight index holds no
// units while the positive ones keep at least one each, even when
// their exact quota rounds to zero.
func TestWeightedIndexZeroWeightNeverDrawn(t *testing.T) {
	w := NewWeightedIndex([]float64{1, 0, 1e-9}, rand.New(rand.NewSource(8)))
	sawTiny := false
	for i := 0; i < 200000; i++ {
		switch w.Next() {
		case 1:
			t.Fatal("zero-weight index drawn")
		case 2:
			sawTiny = true
		}
	}
	if !sawTiny {
		t.Fatal("positive-weight index starved despite the unit floor")
	}
}

// TestWeightedIndexDegenerateUniform: with no positive weight the
// sampler falls back to a uniform draw (Apportion's own fallback)
// instead of an empty table.
func TestWeightedIndexDegenerateUniform(t *testing.T) {
	w := NewWeightedIndex([]float64{0, 0, 0}, rand.New(rand.NewSource(9)))
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[w.Next()]++
	}
	for i, c := range counts {
		if c < 8000 {
			t.Fatalf("degenerate fallback not uniform: index %d drew %d of 30000 (%v)", i, c, counts)
		}
	}
}
