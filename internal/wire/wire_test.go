package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSeqOrdering(t *testing.T) {
	cases := []struct {
		a, b Seq
		less bool
	}{
		{Seq{1, 1}, Seq{1, 2}, true},
		{Seq{1, 2}, Seq{1, 1}, false},
		{Seq{1, 99}, Seq{2, 1}, true}, // epoch dominates
		{Seq{2, 1}, Seq{1, 99}, false},
		{Seq{1, 1}, Seq{1, 1}, false},
		{ZeroSeq, Seq{1, 1}, true},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestSeqLessEqReflexive(t *testing.T) {
	s := Seq{3, 7}
	if !s.LessEq(s) {
		t.Fatal("LessEq not reflexive")
	}
}

func TestSeqMax(t *testing.T) {
	a, b := Seq{1, 5}, Seq{2, 1}
	if a.Max(b) != b || b.Max(a) != b {
		t.Fatal("Max wrong")
	}
}

// Property: Less is a strict total order consistent with LessEq.
func TestSeqOrderProperty(t *testing.T) {
	f := func(e1 uint32, n1 uint64, e2 uint32, n2 uint64) bool {
		a, b := Seq{e1, n1}, Seq{e2, n2}
		// exactly one of a<b, b<a, a==b
		cnt := 0
		if a.Less(b) {
			cnt++
		}
		if b.Less(a) {
			cnt++
		}
		if a == b {
			cnt++
		}
		if cnt != 1 {
			return false
		}
		return a.LessEq(b) == !b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqOrderTransitive(t *testing.T) {
	f := func(e1 uint32, n1 uint64, e2 uint32, n2 uint64, e3 uint32, n3 uint64) bool {
		a, b, c := Seq{e1, n1}, Seq{e2, n2}, Seq{e3, n3}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashKeyStable(t *testing.T) {
	if HashKey("user:1001") != HashKey("user:1001") {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("a") == HashKey("b") {
		t.Fatal("trivially distinct keys collide")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Packet{
		Op:            OpWrite,
		Flags:         FlagDelete | FlagFastPath,
		ObjID:         0xDEADBEEF,
		Switch:        5,
		Seq:           Seq{3, 1234567},
		LastCommitted: Seq{2, 99},
		ClientID:      17,
		ReqID:         0xABCDEF,
		Key:           "some-key",
		Value:         []byte("hello world"),
	}
	b, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, n, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Fatalf("consumed %d of %d bytes", n, len(b))
	}
	if q.Op != p.Op || q.Flags != p.Flags || q.ObjID != p.ObjID ||
		q.Switch != p.Switch ||
		q.Seq != p.Seq || q.LastCommitted != p.LastCommitted ||
		q.ClientID != p.ClientID || q.ReqID != p.ReqID ||
		q.Key != p.Key || !bytes.Equal(q.Value, p.Value) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", p, q)
	}
}

func TestEncodeDecodeEmptyFields(t *testing.T) {
	p := &Packet{Op: OpRead, ObjID: 1}
	b, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Key != "" || q.Value != nil {
		t.Fatalf("empty fields not preserved: %+v", q)
	}
}

// Property: Encode/Decode is the identity for arbitrary packets.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, flags uint8, obj uint32, sw uint8, se uint32, sn uint64,
		le uint32, ln uint64, cid uint32, rid uint64, key string, val []byte) bool {
		p := &Packet{
			Op:            Op(op%5 + 1),
			Flags:         Flags(flags),
			ObjID:         ObjectID(obj),
			Switch:        sw,
			Seq:           Seq{se, sn},
			LastCommitted: Seq{le, ln},
			ClientID:      cid,
			ReqID:         rid,
			Key:           key,
			Value:         val,
		}
		b, err := p.Encode(nil)
		if err != nil {
			return len(key) > MaxKeyLen
		}
		q, n, err := Decode(b)
		if err != nil || n != len(b) {
			return false
		}
		if len(val) == 0 && q.Value != nil {
			return false
		}
		return q.Op == p.Op && q.Flags == p.Flags && q.ObjID == p.ObjID &&
			q.Switch == p.Switch &&
			q.Seq == p.Seq && q.LastCommitted == p.LastCommitted &&
			q.ClientID == p.ClientID && q.ReqID == p.ReqID &&
			q.Key == p.Key && bytes.Equal(q.Value, p.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, _, err := Decode(make([]byte, 10)); err == nil {
		t.Fatal("short input accepted")
	}
	p := &Packet{Op: OpRead, Key: "k", Value: []byte("v")}
	b, _ := p.Encode(nil)
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := Decode(b[:len(b)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	b[0] = 0 // invalid op
	if _, _, err := Decode(b); err != ErrBadOp {
		t.Fatalf("bad op error = %v", err)
	}
}

func TestEncodeBadOp(t *testing.T) {
	p := &Packet{Op: 0}
	if _, err := p.Encode(nil); err != ErrBadOp {
		t.Fatalf("err = %v, want ErrBadOp", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := &Packet{Op: OpWrite, Value: []byte{1, 2, 3}}
	q := p.Clone()
	q.Value[0] = 9
	if p.Value[0] != 1 {
		t.Fatal("Clone aliases Value")
	}
}

func TestIsReply(t *testing.T) {
	if (&Packet{Op: OpRead}).IsReply() || !(&Packet{Op: OpReadReply}).IsReply() {
		t.Fatal("IsReply wrong")
	}
}

func TestOpString(t *testing.T) {
	for op := OpRead; op <= OpWriteReply; op++ {
		if op.String() == "" {
			t.Fatalf("empty string for op %d", op)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Fatal("unknown op string")
	}
}

func TestSlotOfRangeAndStability(t *testing.T) {
	for i := 0; i < 100000; i++ {
		id := ObjectID(uint32(i) * 2654435761)
		s := SlotOf(id)
		if s < 0 || s >= NumSlots {
			t.Fatalf("SlotOf(%d) = %d out of range", id, s)
		}
		if SlotOf(id) != s {
			t.Fatal("SlotOf not deterministic")
		}
	}
}

func TestSlotOfCoversAllSlots(t *testing.T) {
	seen := make([]bool, NumSlots)
	for i := 0; i < 200000; i++ {
		seen[SlotOf(ObjectID(uint32(i)*2654435761+7))] = true
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("slot %d never hit", s)
		}
	}
}

func TestGroupOfComposesSlotRouting(t *testing.T) {
	// The static mapping must be exactly the slot hash composed with
	// the default striping — the invariant that makes a fresh slot
	// table behave identically to the pre-rebalancing static hash.
	for i := 0; i < 10000; i++ {
		id := ObjectID(uint32(i) * 2654435761)
		for _, n := range []int{1, 2, 3, 4, 8} {
			if got, want := GroupOf(id, n), DefaultGroupOfSlot(SlotOf(id), n); got != want {
				t.Fatalf("GroupOf(%d, %d) = %d, want %d", id, n, got, want)
			}
		}
	}
	if DefaultGroupOfSlot(17, 0) != 0 || DefaultGroupOfSlot(17, 1) != 0 {
		t.Fatal("degenerate group counts must map to 0")
	}
}
