//go:build !race

package wire

// Non-race builds skip the managed-packet accounting entirely; the
// calls inline to nothing. Double releases still panic via the
// refsFreed sentinel in Release.

func notePacketAlloc() {}

func notePacketFree() {}

// LiveManagedPackets returns -1 outside race builds, where the
// managed-packet account is not maintained.
func LiveManagedPackets() int64 { return -1 }
