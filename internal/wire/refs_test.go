package wire

import "testing"

// TestRefcountLifecycle pins the managed-packet lifecycle: NewPacket
// hands out one reference, Retain adds holders, Release at zero parks
// the struct in the pool, and any further use panics via the freed
// sentinel.
func TestRefcountLifecycle(t *testing.T) {
	p := NewPacket()
	if !p.Managed() {
		t.Fatal("NewPacket not managed")
	}
	p.Retain()
	p.Release()
	if !p.Managed() {
		t.Fatal("packet freed with a holder outstanding")
	}
	p.Release()
	if p.Managed() {
		t.Fatal("packet still managed after final release")
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on freed packet did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Release", func() { p.Release() })
	mustPanic("Retain", func() { p.Retain() })
	mustPanic("FlightClone", func() { p.FlightClone() })
}

// TestRefcountUnmanaged pins that literal packets and Clone/
// ShallowClone results sit outside the pool lifecycle: Retain and
// Release are no-ops, so shared code paths need no special casing.
func TestRefcountUnmanaged(t *testing.T) {
	lit := &Packet{Op: OpRead, ObjID: 7}
	if lit.Managed() {
		t.Fatal("literal packet claims to be managed")
	}
	lit.Retain()
	lit.Release()
	lit.Release()
	if lit.Op != OpRead || lit.ObjID != 7 {
		t.Fatal("Release mutated an unmanaged packet")
	}

	m := NewPacket()
	m.Op = OpWrite
	m.Retain() // two holders
	if c := m.Clone(); c.Managed() {
		t.Fatal("Clone of a managed packet is managed")
	}
	if s := m.ShallowClone(); s.Managed() {
		t.Fatal("ShallowClone of a managed packet is managed")
	}
	m.Release()
	m.Release()
}

// TestFlightClone pins the per-transmission copy: a pooled header copy
// sharing the payload, holding one fresh reference, leaving the source
// count untouched, and normalizing empty values to nil.
func TestFlightClone(t *testing.T) {
	src := &Packet{Op: OpWrite, ObjID: 3, Key: "k", Value: []byte{1, 2}}
	fc := src.FlightClone()
	if !fc.Managed() {
		t.Fatal("FlightClone not managed")
	}
	if fc.Op != src.Op || fc.ObjID != src.ObjID || fc.Key != src.Key {
		t.Fatal("FlightClone header mismatch")
	}
	if &fc.Value[0] != &src.Value[0] {
		t.Fatal("FlightClone copied the payload instead of sharing it")
	}
	if src.Managed() {
		t.Fatal("FlightClone changed the source's management state")
	}
	fc.Release()

	empty := &Packet{Op: OpRead, Value: []byte{}}
	fc2 := empty.FlightClone()
	if fc2.Value != nil {
		t.Fatal("FlightClone did not normalize empty value to nil")
	}
	fc2.Release()

	// A pool round trip must hand back a zeroed packet with one ref.
	again := NewPacket()
	if again.Op != 0 || again.Key != "" || again.Value != nil || !again.Managed() {
		t.Fatalf("pooled packet not reset: %+v", again)
	}
	again.Release()
}
