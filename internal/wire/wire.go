// Package wire defines the Harmonia packet formats exchanged between
// clients, the in-network request scheduler, and storage servers.
//
// The client library exposes two header fields to the switch (§4 of the
// paper): the operation type and the affected object ID. Writes
// additionally carry the switch-assigned sequence number, and fast-path
// reads carry the switch's last-committed point. Sequence numbers are
// augmented with the switch's unique ID ("epoch" here) and ordered
// lexicographically, epoch first (§5.3), so that no two writes issued by
// different switch incarnations share a sequence number.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"unsafe"
)

// Op is the operation type carried in the Harmonia header.
type Op uint8

const (
	// OpRead is a client GET. The switch either forwards it along the
	// normal protocol path or, when the object is not in the dirty set,
	// stamps it with the last-committed point and sends it to a single
	// random replica (the fast path).
	OpRead Op = iota + 1
	// OpWrite is a client SET or DEL. The switch assigns it a sequence
	// number and inserts the object into the dirty set.
	OpWrite
	// OpWriteCompletion notifies the switch that a write has been fully
	// committed by the replication protocol. It is usually piggybacked
	// on the write reply that traverses the switch on its way back to
	// the client.
	OpWriteCompletion
	// OpReadReply and OpWriteReply are responses to the client.
	OpReadReply
	OpWriteReply
)

// String implements fmt.Stringer for diagnostics.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpWriteCompletion:
		return "WRITE-COMPLETION"
	case OpReadReply:
		return "READ-REPLY"
	case OpWriteReply:
		return "WRITE-REPLY"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// ObjectID is the fixed-length (32-bit) object identifier tracked by
// the switch. Variable-length application keys are hashed down to an
// ObjectID by the client library (§6.1); collisions can only cause the
// switch to believe a key is contended, never the reverse, so they
// affect performance but not consistency.
type ObjectID uint32

// HashKey maps a variable-length key to its fixed-length ObjectID.
func HashKey(key string) ObjectID {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return ObjectID(h.Sum32())
}

// NumSlots is the fixed, power-of-two routing-slot count. Every object
// hashes to exactly one slot via SlotOf; the switch front-end owns a
// slot → replica-group table consulted on every client-originated
// packet, which is what makes group rebalancing an online routine
// operation (move a slot's route, not a hash function). 256 slots give
// the rebalancer fine-grained units while the table still fits in a
// handful of switch registers.
const NumSlots = 256

// SlotOf maps an object to its routing slot. The golden-ratio multiply
// decorrelates slot assignment from the dirty-set stage hashes, which
// also mix the raw ObjectID bits. Clients may cache a slot table to
// guess the owning group, but the switch front-end's table is the
// routing authority — a stale client guess is overridden in-network.
func SlotOf(id ObjectID) int {
	return int((uint32(id) * 0x9E3779B1 >> 8) % NumSlots)
}

// DefaultGroupOfSlot is the boot-time slot → group assignment: slots
// are striped across the n groups. The front-end's table starts out
// exactly like this and diverges only through explicit migrations.
func DefaultGroupOfSlot(slot, n int) int {
	if n <= 1 {
		return 0
	}
	return slot % n
}

// GroupOf composes SlotOf with the default slot striping — the static
// mapping used before any rebalancing, kept for boot-time setup and
// for single-table tests. Live routing goes through the switch
// front-end's slot table, which starts equal to this function.
func GroupOf(id ObjectID, n int) int {
	return DefaultGroupOfSlot(SlotOf(id), n)
}

// Seq is an epoch-tagged sequence number. Epoch is the unique ID of the
// switch incarnation that assigned it; N is the per-switch counter.
// Ordering is lexicographic with the epoch considered first.
type Seq struct {
	Epoch uint32
	N     uint64
}

// Zero is the bottom sequence number, smaller than any assigned one.
var ZeroSeq = Seq{}

// Less reports whether s orders strictly before o.
func (s Seq) Less(o Seq) bool {
	if s.Epoch != o.Epoch {
		return s.Epoch < o.Epoch
	}
	return s.N < o.N
}

// LessEq reports s ≤ o in the lexicographic order.
func (s Seq) LessEq(o Seq) bool { return !o.Less(s) }

// IsZero reports whether s is the bottom element.
func (s Seq) IsZero() bool { return s == Seq{} }

// Max returns the larger of s and o.
func (s Seq) Max(o Seq) Seq {
	if s.Less(o) {
		return o
	}
	return s
}

// String renders "epoch:n".
func (s Seq) String() string { return fmt.Sprintf("%d:%d", s.Epoch, s.N) }

// Flags on a packet.
type Flags uint8

const (
	// FlagFastPath marks a read the switch scheduled directly to a
	// single replica; the replica may answer it locally only after the
	// §7 visibility/integrity check passes.
	FlagFastPath Flags = 1 << iota
	// FlagForwarded marks a fast-path read a replica rejected and
	// forwarded into the normal protocol path; it must not be
	// re-examined by the switch's dirty set (it is already on the slow
	// path).
	FlagForwarded
	// FlagDelete marks a write as a deletion rather than an update.
	FlagDelete
	// FlagNotFound marks a read reply for a missing object.
	FlagNotFound
	// FlagDropped marks a write reply synthesized by the switch when
	// the dirty set had no free slot and the write was dropped (§6.1:
	// "The write is dropped if no slot is available"). Clients retry.
	FlagDropped
	// FlagFlush marks a control-plane drain write that is allowed to
	// pass a frozen routing slot. A whole-group drain (group retirement
	// or membership respec) freezes every slot the group serves, which
	// would otherwise wedge the drain: flushing a stray dirty entry
	// below the commit point requires one more write through the same
	// scheduler partition, and all of its slots are frozen. Only the
	// cluster's own drain machinery sets this flag.
	FlagFlush
	// FlagInvalidate marks a write to a hot-replicated key: the switch
	// stamps it when the front-end's hot-key table holds the object, as
	// the wire-visible record that the holder copies were invalidated
	// in the same traversal (Hermes-style broadcast invalidation,
	// executed in the switch's register state rather than by extra
	// messages).
	FlagInvalidate
	// FlagRefresh marks a control-plane refresh completion for a
	// hot-replicated key: the holder copies have been re-installed, and
	// the carried Seq.N is the write generation the refresh captured.
	// The front-end validates its hot-key entry against it instead of
	// forwarding the packet to any scheduler partition.
	FlagRefresh
)

// HotKey is one switch hot-key table entry: a promoted object, the
// replica groups holding an extra copy (the home group is implicit —
// whatever the routing table maps the object's slot to), a bitmap of
// holders whose copies are invalid (a write was sequenced since their
// last refresh), and the write generation the invalidation state is
// versioned by. The shape is register-friendly on purpose: fixed-width
// fields, at most one promoted key per routing slot, so a hardware
// front-end could keep the table next to the dirty set.
type HotKey struct {
	ObjID   ObjectID
	Holders []uint16
	// Invalid is a bitmap over Holders: bit i set means holder i's copy
	// has not been refreshed since the last write.
	Invalid uint64
	// WriteGen counts writes sequenced against the key since promotion;
	// a refresh validates holders only if it captured the latest
	// generation.
	WriteGen uint64
}

// InvalidCount returns how many holder copies are currently invalid.
func (h HotKey) InvalidCount() int {
	n := 0
	for i := range h.Holders {
		if h.Invalid&(1<<uint(i)) != 0 {
			n++
		}
	}
	return n
}

// Packet is the Harmonia request/reply unit. One struct covers all five
// ops; unused fields are zero. In the simulated network packets travel
// by pointer, but Encode/Decode define the byte-level format used by
// tests and by any real transport.
type Packet struct {
	Op    Op
	Flags Flags

	// ObjID is the fixed-length object identifier.
	ObjID ObjectID

	// Group is the replica group serving this object. Clients stamp it
	// with GroupOf so their routing matches the switch front-end's;
	// replicas echo it into replies and write-completions so the switch
	// credits the right scheduler partition.
	Group uint16

	// Switch is the switch front-end that handled the packet. In a
	// multi-switch rack each front-end owns a contiguous shard of the
	// routing slots; the owning front-end stamps its ID on every packet
	// it forwards, so clients (and tests) can observe which epoch/lease
	// domain served an operation. Single-switch racks always stamp 0.
	Switch uint8

	// Seq is the switch-assigned sequence number (writes,
	// write-completions, and replies that piggyback completions).
	Seq Seq

	// LastCommitted is the switch's last-committed point, stamped into
	// fast-path reads (and used by replicas for the §7 checks).
	LastCommitted Seq

	// ClientID and ReqID identify the request for at-most-once
	// semantics and reply matching.
	ClientID uint32
	ReqID    uint64

	// Span is the operation's trace-span reference (internal/trace),
	// 0 when the op is untraced. It is a simulation-side annotation
	// only: Encode never serializes it and DecodeInto always zeroes
	// it, so the byte-level format is unchanged. Clone and
	// ShallowClone copy it, which is how a span follows the op across
	// per-transmission header copies and protocol replies.
	Span uint64

	// Key is the original variable-length key (carried in the payload;
	// the switch looks only at ObjID).
	Key string
	// Value is the write payload or read result. A zero-length value
	// is canonically nil: Decode, DecodeInto, Clone, and ShallowClone
	// all normalize empty to nil, so "no payload" has exactly one
	// representation no matter how many codec or pooling round trips a
	// packet takes.
	Value []byte

	// refs is the reference count of a pool-managed packet. 0 means
	// unmanaged: a packet built as a literal (tests, control-plane
	// writes, client master records) is outside the pool's lifecycle
	// and every Retain/Release on it is a no-op. Managed packets come
	// from NewPacket/FlightClone with refs == 1; refsFreed marks a
	// packet sitting in the pool, so any use after free panics instead
	// of corrupting an unrelated packet.
	refs int32
}

// Ownership contract. In the simulated network packets travel by
// pointer and are reference-counted: Send transfers one reference to
// the receiving node, and whichever handler terminally consumes a
// packet (replies to it, drops it, or absorbs it into a reply) calls
// Release; a handler that stores the packet past its Recv call (a
// replication log, a pending-write table, a cached reply) keeps the
// reference it was handed, and every additional long-lived holder or
// concurrent transmission takes its own via Retain. Packets are still
// immutable once sequenced — the switch stamps header fields (Seq,
// LastCommitted, Flags, Group, Switch) while it is the sole owner, and
// after fan-out every receiver shares the struct and payload
// read-only; a sender that may retransmit (client retries, cached
// re-replies) therefore sends a pooled FlightClone per transmission,
// never the retained original. Value bytes are never recycled — only
// the packet struct is pooled — so a store or client table that
// aliased a released packet's payload stays valid. The whole scheme is
// fail-safe by construction: a missed Release leaks one struct to the
// garbage collector (losing pooling, nothing else), while double
// releases and uses after free panic outright, and race builds
// additionally account every managed packet (see refs_race.go). On a
// byte transport the equivalent rule: a packet produced by DecodeInto
// borrows Key and Value from the input buffer and is valid only while
// the buffer is; a receiver that retains it past that point must call
// Own first.

// header layout (fixed 45 bytes) followed by key and value, each
// length-prefixed with uint16/uint32.
const headerSize = 1 + 1 + 4 + 2 + 1 + (4 + 8) + (4 + 8) + 4 + 8 // = 45

// MaxKeyLen bounds encoded key length.
const MaxKeyLen = 1<<16 - 1

var (
	// ErrShortPacket reports a truncated encoding.
	ErrShortPacket = errors.New("wire: short packet")
	// ErrBadOp reports an out-of-range op code.
	ErrBadOp = errors.New("wire: bad op")
	// ErrKeyTooLong reports a key exceeding MaxKeyLen.
	ErrKeyTooLong = errors.New("wire: key too long")
)

// bufPool recycles encode buffers. Buffers are pointers-to-slices so
// the pool round trip itself does not allocate.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuffer borrows a zeroed-length encode buffer from the pool. Pass
// *buf (or (*buf)[:0]) to Encode and return it with PutBuffer when the
// encoded bytes are no longer referenced — including by any packet a
// DecodeInto borrowed from it.
func GetBuffer() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer returns a buffer to the pool. The caller must not retain
// views into it.
func PutBuffer(b *[]byte) {
	if b != nil {
		bufPool.Put(b)
	}
}

// Encode appends the wire form of p to buf and returns the result.
func (p *Packet) Encode(buf []byte) ([]byte, error) {
	if len(p.Key) > MaxKeyLen {
		return nil, ErrKeyTooLong
	}
	if p.Op < OpRead || p.Op > OpWriteReply {
		return nil, ErrBadOp
	}
	var hdr [headerSize]byte
	hdr[0] = byte(p.Op)
	hdr[1] = byte(p.Flags)
	binary.BigEndian.PutUint32(hdr[2:], uint32(p.ObjID))
	binary.BigEndian.PutUint16(hdr[6:], p.Group)
	hdr[8] = p.Switch
	binary.BigEndian.PutUint32(hdr[9:], p.Seq.Epoch)
	binary.BigEndian.PutUint64(hdr[13:], p.Seq.N)
	binary.BigEndian.PutUint32(hdr[21:], p.LastCommitted.Epoch)
	binary.BigEndian.PutUint64(hdr[25:], p.LastCommitted.N)
	binary.BigEndian.PutUint32(hdr[33:], p.ClientID)
	binary.BigEndian.PutUint64(hdr[37:], p.ReqID)
	buf = append(buf, hdr[:]...)
	var klen [2]byte
	binary.BigEndian.PutUint16(klen[:], uint16(len(p.Key)))
	buf = append(buf, klen[:]...)
	buf = append(buf, p.Key...)
	var vlen [4]byte
	binary.BigEndian.PutUint32(vlen[:], uint32(len(p.Value)))
	buf = append(buf, vlen[:]...)
	buf = append(buf, p.Value...)
	return buf, nil
}

// Decode parses a packet from b, returning the packet and the number of
// bytes consumed. The packet owns its key and value (copied out of b).
func Decode(b []byte) (*Packet, int, error) {
	p := &Packet{}
	n, err := DecodeInto(p, b)
	if err != nil {
		return nil, 0, err
	}
	p.Own()
	return p, n, nil
}

// DecodeInto parses a packet from b into p, reusing p's storage. It is
// the zero-copy, zero-allocation decode for switch-side inspection:
// p.Key and p.Value are borrowed views into b, valid only while b is.
// A receiver that retains the packet (or b is a pooled buffer about to
// be reused) must call p.Own() first. Every field of p is overwritten
// — including Key and Value when the encoding carries none — so a
// pooled *Packet can never resurrect a previous incarnation's payload.
func DecodeInto(p *Packet, b []byte) (int, error) {
	if len(b) < headerSize+2+4 {
		return 0, ErrShortPacket
	}
	op := Op(b[0])
	if op < OpRead || op > OpWriteReply {
		return 0, ErrBadOp
	}
	p.Op = op
	p.Flags = Flags(b[1])
	p.ObjID = ObjectID(binary.BigEndian.Uint32(b[2:]))
	p.Group = binary.BigEndian.Uint16(b[6:])
	p.Switch = b[8]
	p.Seq = Seq{
		Epoch: binary.BigEndian.Uint32(b[9:]),
		N:     binary.BigEndian.Uint64(b[13:]),
	}
	p.LastCommitted = Seq{
		Epoch: binary.BigEndian.Uint32(b[21:]),
		N:     binary.BigEndian.Uint64(b[25:]),
	}
	p.ClientID = binary.BigEndian.Uint32(b[33:])
	p.ReqID = binary.BigEndian.Uint64(b[37:])
	p.Span = 0 // simulation-only annotation, never on the wire
	off := headerSize
	klen := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+klen+4 {
		return 0, ErrShortPacket
	}
	if klen > 0 {
		// Borrowed string view over b — no copy. Safe because strings
		// are only read and the contract forbids mutating b while any
		// decoded view is live; Own() materializes a real copy.
		p.Key = unsafe.String(&b[off], klen)
	} else {
		p.Key = ""
	}
	off += klen
	vlen := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	if len(b) < off+vlen {
		return 0, ErrShortPacket
	}
	if vlen > 0 {
		p.Value = b[off : off+vlen : off+vlen]
	} else {
		p.Value = nil
	}
	off += vlen
	return off, nil
}

// Own replaces any borrowed key/value views with owned copies, after
// which the packet is independent of the buffer it was decoded from.
// Required exactly when a receiver retains the packet beyond the
// lifetime of the decode buffer.
func (p *Packet) Own() {
	if len(p.Key) > 0 {
		p.Key = string(append([]byte(nil), p.Key...))
	}
	if len(p.Value) > 0 {
		p.Value = append([]byte(nil), p.Value...)
	} else {
		p.Value = nil
	}
}

// Clone returns a deep copy of p: fresh header and a fresh payload
// copy. Zero-length values normalize to nil, exactly as Decode
// produces them.
func (p *Packet) Clone() *Packet {
	q := *p
	q.refs = 0 // deep copies start unmanaged regardless of the source
	if len(p.Value) > 0 {
		q.Value = append([]byte(nil), p.Value...)
	} else {
		q.Value = nil
	}
	return &q
}

// ShallowClone returns a fresh unmanaged header copy sharing p's
// payload: header stamps (Seq, Flags, routing) are per-flight state,
// while the payload bytes are immutable once created and safe to
// share. Hot paths use the pooled FlightClone instead; ShallowClone
// remains for callers outside the pool's lifecycle (tests, one-off
// control-plane copies). Zero-length values normalize to nil like
// Clone.
func (p *Packet) ShallowClone() *Packet {
	q := *p
	q.refs = 0
	if len(q.Value) == 0 {
		q.Value = nil
	}
	return &q
}

// refsFreed marks a packet parked in the pool. Any Retain, Release, or
// FlightClone on it is a use after free and panics.
const refsFreed int32 = -1

// packetPool recycles managed packet structs. Only the struct is
// pooled: Key strings and Value bytes are never written through a
// pooled packet, so payloads outlive any Release that recycles their
// carrier. The pool is shared across clusters (parallel tests), but a
// packet moves between goroutines only through Get/Put, which
// sync.Pool synchronizes.
var packetPool = sync.Pool{New: func() any { return &Packet{} }}

// NewPacket returns a zeroed pool-managed packet holding one
// reference. The caller owns that reference and must balance it with
// Release (or transfer it by sending the packet).
func NewPacket() *Packet {
	p := packetPool.Get().(*Packet)
	*p = Packet{refs: 1}
	notePacketAlloc()
	return p
}

// FlightClone returns a pool-managed header copy of p sharing its
// payload, holding one fresh reference. It is the per-transmission
// copy for senders that may transmit the same logical packet more than
// once — client retries and cached re-replies — keeping the retained
// original off the wire so in-flight header stamps never race a second
// flight. p itself may be managed or unmanaged; its count is
// untouched.
func (p *Packet) FlightClone() *Packet {
	if p.refs < 0 {
		panic("wire: FlightClone of a freed packet")
	}
	q := packetPool.Get().(*Packet)
	*q = *p
	q.refs = 1
	if len(q.Value) == 0 {
		q.Value = nil
	}
	notePacketAlloc()
	return q
}

// Retain adds a reference to a managed packet and returns it. Take one
// per additional long-lived holder or concurrent transfer: a cached
// reply stored while the same packet rides to the client, a multicast
// fan-out beyond the first destination, a chain propagation that also
// stays in the local unacked window. On an unmanaged packet (refs 0:
// literals, ShallowClone/Clone results) Retain is a no-op, so code
// paths shared with test-crafted packets need no special casing.
// Retaining a freed packet panics.
func (p *Packet) Retain() *Packet {
	if p.refs < 0 {
		panic("wire: Retain of a freed packet")
	}
	if p.refs > 0 {
		p.refs++
	}
	return p
}

// Release drops one reference; at zero the struct returns to the
// packet pool. Call it at every terminal consumption: a handler that
// answered, dropped, or absorbed the packet; a trimmed unacked entry;
// a replaced cached reply. Unmanaged packets ignore Release, so a
// missed Release on a managed one merely leaks the struct to the
// garbage collector — pooling lost, correctness intact — while a
// double Release panics instead of recycling a packet someone still
// holds. Race builds additionally keep a live-packet account (see
// refs_race.go).
func (p *Packet) Release() {
	if p.refs == 0 {
		return
	}
	if p.refs < 0 {
		panic("wire: Release of a freed packet (double release)")
	}
	if p.refs--; p.refs == 0 {
		notePacketFree()
		*p = Packet{refs: refsFreed}
		packetPool.Put(p)
	}
}

// Managed reports whether p participates in the pool's refcount
// lifecycle (came from NewPacket/FlightClone and is still live).
func (p *Packet) Managed() bool { return p.refs > 0 }

// IsReply reports whether the packet is a client-bound response.
func (p *Packet) IsReply() bool { return p.Op == OpReadReply || p.Op == OpWriteReply }

// String renders a compact human-readable form for logs and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("{%s obj=%d g=%d seq=%s lc=%s c=%d r=%d f=%02x}",
		p.Op, p.ObjID, p.Group, p.Seq, p.LastCommitted, p.ClientID, p.ReqID, uint8(p.Flags))
}
