package wire

import (
	"testing"
)

func benchPacket() *Packet {
	return &Packet{
		Op: OpWrite, Flags: FlagFastPath,
		ObjID: 123456, Group: 3, Switch: 1,
		Seq:           Seq{Epoch: 2, N: 777},
		LastCommitted: Seq{Epoch: 2, N: 770},
		ClientID:      42, ReqID: 9001,
		Key:   "obj00001234",
		Value: []byte("sixteen byte val"),
	}
}

// TestValueNormalization pins the Clone/Decode contract: a zero-length
// value is canonically nil on every path, so comparing packets across
// an encode/decode round trip (or across clones) never trips over
// empty-vs-nil.
func TestValueNormalization(t *testing.T) {
	p := benchPacket()
	p.Value = []byte{}

	if q := p.Clone(); q.Value != nil {
		t.Fatalf("Clone of empty value = %#v, want nil", q.Value)
	}
	if q := p.ShallowClone(); q.Value != nil {
		t.Fatalf("ShallowClone of empty value = %#v, want nil", q.Value)
	}
	p.Own()
	if p.Value != nil {
		t.Fatalf("Own of empty value = %#v, want nil", p.Value)
	}

	enc, err := p.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if q.Value != nil {
		t.Fatalf("Decode of empty value = %#v, want nil", q.Value)
	}
}

// TestDecodeIntoOverwritesStaleViews pins the pooled-reuse guarantee:
// decoding a payload-free packet into a struct that previously held a
// key and value must not resurrect the old views.
func TestDecodeIntoOverwritesStaleViews(t *testing.T) {
	full := benchPacket()
	enc1, err := full.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	bare := &Packet{Op: OpRead, ObjID: 9}
	enc2, err := bare.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}

	var p Packet
	if _, err := DecodeInto(&p, enc1); err != nil {
		t.Fatal(err)
	}
	if p.Key != full.Key || string(p.Value) != string(full.Value) {
		t.Fatalf("first decode: %q %q", p.Key, p.Value)
	}
	if _, err := DecodeInto(&p, enc2); err != nil {
		t.Fatal(err)
	}
	if p.Key != "" || p.Value != nil {
		t.Fatalf("stale views survived reuse: key=%q value=%q", p.Key, p.Value)
	}
}

// TestDecodeIntoBorrowsAndOwnDetaches pins the borrow semantics:
// DecodeInto's value view aliases the input buffer, and Own breaks the
// alias.
func TestDecodeIntoBorrowsAndOwnDetaches(t *testing.T) {
	enc, err := benchPacket().Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	if _, err := DecodeInto(&p, enc); err != nil {
		t.Fatal(err)
	}
	valOff := len(enc) - len(p.Value)
	enc[valOff] ^= 0xff
	if p.Value[0] != enc[valOff] {
		t.Fatal("DecodeInto value does not borrow from the buffer")
	}
	enc[valOff] ^= 0xff

	p.Own()
	enc[valOff] ^= 0xff
	if p.Value[0] == enc[valOff] {
		t.Fatal("Own did not detach the value from the buffer")
	}
}

// TestEncodeZeroAllocs asserts the write fast path allocates nothing
// when the caller reuses an encode buffer.
func TestEncodeZeroAllocs(t *testing.T) {
	p := benchPacket()
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(1000, func() {
		out, err := p.Encode(buf[:0])
		if err != nil || len(out) == 0 {
			t.Fatal("encode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Encode into reused buffer: %.1f allocs/op, want 0", allocs)
	}
}

// TestDecodeIntoZeroAllocs asserts the read fast path allocates
// nothing: borrowed key and value views, no copies.
func TestDecodeIntoZeroAllocs(t *testing.T) {
	enc, err := benchPacket().Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := DecodeInto(&p, enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeInto: %.1f allocs/op, want 0", allocs)
	}
}

// TestPooledBufferRoundTripZeroAllocs asserts the Get/Put buffer cycle
// itself stays off the heap in steady state.
func TestPooledBufferRoundTripZeroAllocs(t *testing.T) {
	p := benchPacket()
	// Prime the pool past the encoded size so steady state never grows.
	b := GetBuffer()
	out, err := p.Encode(*b)
	if err != nil {
		t.Fatal(err)
	}
	*b = out
	PutBuffer(b)
	allocs := testing.AllocsPerRun(1000, func() {
		b := GetBuffer()
		out, _ := p.Encode(*b)
		*b = out
		PutBuffer(b)
	})
	if allocs != 0 {
		t.Fatalf("pooled encode round trip: %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := benchPacket()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := p.Encode(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

func BenchmarkDecode(b *testing.B) {
	enc, err := benchPacket().Encode(nil)
	if err != nil {
		b.Fatal(err)
	}
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeInto(&p, enc); err != nil {
			b.Fatal(err)
		}
	}
}
