//go:build race

package wire

import "sync/atomic"

// Race builds account every managed packet so leak and double-release
// bugs surface in CI's -race shards: the live counter must never go
// negative (a free without a matching alloc means the refcount was
// corrupted), and tests can snapshot LiveManagedPackets around a
// quiesced workload to bound leakage.
var liveManagedPackets atomic.Int64

func notePacketAlloc() { liveManagedPackets.Add(1) }

func notePacketFree() {
	if liveManagedPackets.Add(-1) < 0 {
		panic("wire: managed-packet account went negative (double release)")
	}
}

// LiveManagedPackets returns the number of managed packets currently
// alive (allocated via NewPacket/FlightClone and not yet released to
// zero). Only meaningful under -race; other builds return -1.
func LiveManagedPackets() int64 { return liveManagedPackets.Load() }
