// Package rack is the multi-switch coordination layer: it instantiates
// several switch front-ends over one set of replica groups and keeps
// the rack-wide picture consistent while each front-end stays an
// independent failure domain.
//
// One front-end per switch owns
//
//   - a contiguous shard of the wire.NumSlots routing slots (the
//     slot → switch map lives here, in the rack),
//   - its own epoch counter — the §5.3 switch-incarnation ID, bumped
//     only when THIS switch is replaced, so rebooting one switch stalls
//     only the groups it hosts (the Cheap Recovery argument: the
//     recovery unit shrinks as the rack grows),
//   - its own lease domain (the controller grants and revokes fast-read
//     leases per (switch, group) pair), and
//   - its own heat registers, counting only the slots it serves.
//
// Replica groups are partitioned across the switches in contiguous
// blocks; a group's scheduler partition lives on its owning switch and
// never moves. What does move is slots: a cross-switch migration flips
// a slot's route to a group on another switch, and the rack transfers
// front-end ownership with the route — freeze on the source front-end,
// drain, copy, flip here, thaw on the destination.
//
// The rack also accumulates the per-switch §5.3 agreement statistics
// (revokes sent, acks received, replacement latency) that the
// controller reports: the measure of how the control plane's agreement
// cost grows with the rack. The package is pure coordination state over
// internal/core front-ends; the cluster wires it to the simulated
// network and drives the agreements.
package rack

import (
	"fmt"
	"math"
	"time"

	"harmonia/internal/core"
	"harmonia/internal/trace"
	"harmonia/internal/wire"
	"harmonia/internal/workload"
)

// MaxSwitches bounds the front-end count: the rack's switch IDs share
// the address space below the replica windows, and a slot shard must
// stay large enough to stripe its groups over.
const MaxSwitches = 8

// SwitchStats counts one switch domain's control-plane events.
type SwitchStats struct {
	// Replacements counts completed §5.3 switch replacements (every
	// owned group revoked and re-granted).
	Replacements uint64
	// RevokesSent and AcksReceived count the agreement's messages: one
	// revoke per live replica of each owned group, one ack back. Their
	// sum is the replacement's total agreement-message cost, which
	// scales with groups-per-switch — not with rack size.
	RevokesSent  uint64
	AcksReceived uint64
	// LastAgreementLatency is the duration of the most recent
	// replacement's agreement: from the first revoke until the last
	// owned group's ack quorum completed.
	LastAgreementLatency time.Duration
}

// AgreementMsgs is the total §5.3 message count (revokes + acks).
func (s SwitchStats) AgreementMsgs() uint64 { return s.RevokesSent + s.AcksReceived }

// Topology is the rack's epoch-versioned membership and layout value:
// which groups exist, which are live, their capacity weights, which
// switch hosts each group, and which group and switch serve each
// routing slot. It is the single indirection every layer reads —
// cluster assembly, switch front-ends (whose tables mirror it),
// the rebalancer's weight vectors, and client routing — so elastic
// reconfiguration is one mutation here plus the §5.3 agreement, not a
// crawl over per-layer copies.
//
// The epoch counts MEMBERSHIP revisions: group add/retire, weight or
// spec changes. Per-slot route flips do not bump it — migrations are
// steady state and consumers (rebalancer weight vectors, client
// splits) only need to recompute when the group set or weights change.
// Reads are plain array/slice loads with no locking or allocation: the
// simulation is single-threaded per event, and the client hot path
// (RouteObj, SwitchOfObj) must stay 0 allocs/op.
type Topology struct {
	epoch     uint64
	groupSw   []int     // group → hosting switch (fixed for the group's lifetime)
	weights   []float64 // capacity weights; 0 for retired groups
	live      []bool    // false once retired — IDs are never reused
	slotGroup [wire.NumSlots]int
	slotSw    [wire.NumSlots]int
}

// Epoch returns the membership revision counter. Consumers cache
// derived state (weight vectors, client splits) keyed by this value
// and recompute only when it moves.
func (t *Topology) Epoch() uint64 { return t.epoch }

// Groups returns the total group count, retired groups included
// (group IDs are stable and never reused).
func (t *Topology) Groups() int { return len(t.groupSw) }

// Live reports whether group g currently serves traffic.
func (t *Topology) Live(g int) bool { return g >= 0 && g < len(t.live) && t.live[g] }

// LiveGroups returns the live group IDs in index order.
func (t *Topology) LiveGroups() []int {
	var out []int
	for g, l := range t.live {
		if l {
			out = append(out, g)
		}
	}
	return out
}

// Weight returns group g's capacity weight (0 once retired).
func (t *Topology) Weight(g int) float64 { return t.weights[g] }

// LiveWeights returns a fresh weight vector indexed by group ID, with
// retired groups at exactly 0 — the form workload.Apportion and the
// weighted-index draw treat as "never pick this group".
func (t *Topology) LiveWeights() []float64 {
	out := make([]float64, len(t.weights))
	for g, l := range t.live {
		if l {
			out[g] = t.weights[g]
		}
	}
	return out
}

// LiveMask returns a copy of the per-group liveness vector.
func (t *Topology) LiveMask() []bool {
	return append([]bool(nil), t.live...)
}

// SwitchOfGroup returns the switch hosting group g.
func (t *Topology) SwitchOfGroup(g int) int { return t.groupSw[g] }

// RouteOf returns the group currently serving slot — a single array
// load, the one indirection on every routing decision.
func (t *Topology) RouteOf(slot int) int { return t.slotGroup[slot] }

// RouteObj returns the group currently serving id's slot.
func (t *Topology) RouteObj(id wire.ObjectID) int { return t.slotGroup[wire.SlotOf(id)] }

// SwitchOfSlot returns the switch currently serving slot.
func (t *Topology) SwitchOfSlot(slot int) int { return t.slotSw[slot] }

// SwitchOfObj returns the switch currently serving id's slot.
func (t *Topology) SwitchOfObj(id wire.ObjectID) int { return t.slotSw[wire.SlotOf(id)] }

// Rack coordinates S switch front-ends over N replica groups.
type Rack struct {
	fronts []*core.Frontend
	topo   Topology
	epochs []uint32
	stats  []SwitchStats

	// rec, when set, is the control-plane flight recorder membership
	// revisions and §5.3 agreement completions are reported to.
	rec *trace.Recorder
}

// SetRecorder points the rack at the control-plane flight recorder.
func (r *Rack) SetRecorder(rec *trace.Recorder) { r.rec = rec }

// noteTopoEpoch reports a membership revision to the flight recorder,
// labeled with the group whose add/retire/respec caused it.
func (r *Rack) noteTopoEpoch(g int) {
	if r.rec != nil {
		r.rec.Emit(trace.Event{
			Kind: trace.EvTopoEpoch, Switch: int16(r.topo.groupSw[g]),
			Group: int16(g), Slot: -1, Arg: r.topo.epoch,
		})
	}
}

// SwitchOfSlotIn is the boot-time slot → switch assignment for a
// UNIFORM rack: the slot space is cut into switches equal contiguous
// shards. Single-switch racks map everything to 0. Weighted racks size
// the shards by capacity instead — see Layout.
func SwitchOfSlotIn(slot, switches int) int {
	if switches <= 1 {
		return 0
	}
	return slot * switches / wire.NumSlots
}

// groupRange returns the contiguous block of groups switch s hosts.
// Group → switch placement is by index, not by weight: the operator
// orders the groups, and heavier blocks simply earn their switch a
// larger slot shard.
func groupRange(s, switches, groups int) (lo, hi int) {
	return s * groups / switches, (s + 1) * groups / switches
}

// DefaultGroupOfSlotIn is the boot-time slot → group assignment for a
// UNIFORM multi-switch rack: within switch s's slot shard, slots are
// striped across s's group block. With one switch this degenerates to
// wire.DefaultGroupOfSlot — the historical single-switch striping.
func DefaultGroupOfSlotIn(slot, switches, groups int) int {
	sw := SwitchOfSlotIn(slot, switches)
	lo, hi := groupRange(sw, switches, groups)
	return lo + slot%(hi-lo)
}

// Validate reports whether a UNIFORM (switches, groups) shape is
// assemblable: every switch must host at least one group and own at
// least as many slots as groups (so each group serves at least one
// slot at boot). Weighted shapes go through ValidateWeights, whose
// layout guarantees the per-group slot minimum by construction.
func Validate(switches, groups int) error {
	if switches < 1 || switches > MaxSwitches {
		return fmt.Errorf("rack: switch count %d out of range [1, %d]", switches, MaxSwitches)
	}
	if groups < switches {
		return fmt.Errorf("rack: %d switches need at least as many groups (have %d)", switches, groups)
	}
	for s := 0; s < switches; s++ {
		lo, hi := groupRange(s, switches, groups)
		slots := 0
		for slot := 0; slot < wire.NumSlots; slot++ {
			if SwitchOfSlotIn(slot, switches) == s {
				slots++
			}
		}
		if hi-lo > slots {
			return fmt.Errorf("rack: switch %d hosts %d groups but owns only %d slots", s, hi-lo, slots)
		}
	}
	return nil
}

// ValidateWeights reports whether a capacity-weighted rack shape is
// assemblable: one positive finite weight per group (the group's
// relative capacity — replica count, ASIC generation, calibrated
// service rate), at least one group per switch, and no more groups
// than routing slots (every group must own at least one slot at
// boot). Equal weights additionally require the uniform layout's shape
// constraints, because that is the layout they select.
func ValidateWeights(switches int, weights []float64) error {
	groups := len(weights)
	if switches < 1 || switches > MaxSwitches {
		return fmt.Errorf("rack: switch count %d out of range [1, %d]", switches, MaxSwitches)
	}
	if groups < switches {
		return fmt.Errorf("rack: %d switches need at least as many groups (have %d)", switches, groups)
	}
	if groups > wire.NumSlots {
		return fmt.Errorf("rack: %d groups exceed the %d routing slots (a group must own at least one slot)", groups, wire.NumSlots)
	}
	for g, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return fmt.Errorf("rack: group %d capacity weight %v must be positive and finite", g, w)
		}
	}
	if uniformWeights(weights) {
		return Validate(switches, groups)
	}
	return nil
}

// uniformWeights reports whether every group has the same capacity
// weight — the shape that must reproduce the historical layout exactly.
// Exact float equality is deliberate: uniform clusters derive every
// group's weight through the identical computation, so they compare
// equal bit for bit, while any intentional heterogeneity differs by
// far more than an ulp.
func uniformWeights(weights []float64) bool {
	for _, w := range weights[1:] {
		if w != weights[0] {
			return false
		}
	}
	return true
}

// Layout computes the boot-time slot → switch and slot → group tables
// for a capacity-weighted rack. Equal weights reproduce the historical
// uniform layout bit for bit (equal contiguous shards, slots striped
// across each block). Unequal weights cut the slot space by capacity:
//
//   - each switch's contiguous shard is apportioned from the 256 slots
//     by its group block's total weight (largest remainder), never
//     smaller than the block's group count;
//   - within a shard, each group's slot count is apportioned by its
//     weight, never below one slot; and
//   - each group's slots are interleaved across the shard (a weighted
//     round-robin), preserving the striped layout's property that a
//     contiguous run of slots touches many groups.
//
// All wire.NumSlots slots are always owned: the apportionments sum
// exactly, with rounding units going to the largest remainders.
func Layout(switches int, weights []float64) (slotSw, slotGroup []int) {
	if err := ValidateWeights(switches, weights); err != nil {
		panic(err)
	}
	groups := len(weights)
	slotSw = make([]int, wire.NumSlots)
	slotGroup = make([]int, wire.NumSlots)
	if uniformWeights(weights) {
		for slot := range slotSw {
			slotSw[slot] = SwitchOfSlotIn(slot, switches)
			slotGroup[slot] = DefaultGroupOfSlotIn(slot, switches, groups)
		}
		return slotSw, slotGroup
	}
	// Shard sizes by block weight, floored at the block's group count.
	blockW := make([]float64, switches)
	blockMin := make([]int, switches)
	for s := 0; s < switches; s++ {
		lo, hi := groupRange(s, switches, groups)
		blockMin[s] = hi - lo
		for g := lo; g < hi; g++ {
			blockW[s] += weights[g]
		}
	}
	shard := workload.ApportionMin(wire.NumSlots, blockW, blockMin)
	start := 0
	for s := 0; s < switches; s++ {
		lo, hi := groupRange(s, switches, groups)
		m := shard[s]
		counts := workload.ApportionMin(m, weights[lo:hi], onesOf(hi-lo))
		// Weighted round-robin interleave: position p goes to the block
		// group furthest behind its proportional pace count·(p+1)/m.
		assigned := make([]int, hi-lo)
		for p := 0; p < m; p++ {
			best := -1
			var bestLag float64
			for k := range counts {
				if assigned[k] >= counts[k] {
					continue
				}
				lag := float64(counts[k])*float64(p+1)/float64(m) - float64(assigned[k])
				if best == -1 || lag > bestLag {
					best, bestLag = k, lag
				}
			}
			slotSw[start+p] = s
			slotGroup[start+p] = lo + best
			assigned[best]++
		}
		start += m
	}
	return slotSw, slotGroup
}

func onesOf(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// New assembles the coordination state for a uniform rack of the given
// shape (which must Validate): every group weighs the same, so the
// shards split evenly — the historical layout. Heterogeneous racks use
// NewWeighted.
func New(switches, groups int) *Rack {
	w := make([]float64, groups)
	for i := range w {
		w[i] = 1
	}
	return NewWeighted(switches, w)
}

// NewWeighted assembles the coordination state for a capacity-weighted
// rack: one relative weight per group (which must ValidateWeights),
// sizing each switch's slot shard and each group's slot share by
// capacity per Layout. Every front-end starts at epoch 1 with empty
// partitions; the cluster installs schedulers as the boot-time
// agreements complete.
func NewWeighted(switches int, weights []float64) *Rack {
	if err := ValidateWeights(switches, weights); err != nil {
		panic(err)
	}
	groups := len(weights)
	r := &Rack{
		fronts: make([]*core.Frontend, switches),
		epochs: make([]uint32, switches),
		stats:  make([]SwitchStats, switches),
	}
	r.topo = Topology{
		epoch:   1,
		groupSw: make([]int, groups),
		weights: append([]float64(nil), weights...),
		live:    make([]bool, groups),
	}
	for s := range r.fronts {
		f := core.NewFrontend(groups)
		f.SetSwitchID(s)
		r.fronts[s] = f
		r.epochs[s] = 1
		lo, hi := groupRange(s, switches, groups)
		for g := lo; g < hi; g++ {
			r.topo.groupSw[g] = s
			r.topo.live[g] = true
		}
	}
	slotSw, slotGroup := Layout(switches, weights)
	for slot := 0; slot < wire.NumSlots; slot++ {
		sw := slotSw[slot]
		r.topo.slotSw[slot] = sw
		r.topo.slotGroup[slot] = slotGroup[slot]
		for s, f := range r.fronts {
			f.SetOwned(slot, s == sw)
			f.SetRoute(slot, slotGroup[slot])
		}
	}
	return r
}

// Topo exposes the rack's live topology value. Callers on hot paths
// read routes through it directly; mutations go through the Rack's
// own methods (AddGroup, RetireGroup, SetGroupWeight, SetRoute) so
// front-end mirrors stay consistent.
func (r *Rack) Topo() *Topology { return &r.topo }

// TopoEpoch returns the current membership revision.
func (r *Rack) TopoEpoch() uint64 { return r.topo.epoch }

// Live reports whether group g currently serves traffic.
func (r *Rack) Live(g int) bool { return r.topo.Live(g) }

// LiveGroups returns the live group IDs in index order.
func (r *Rack) LiveGroups() []int { return r.topo.LiveGroups() }

// AddGroup appends a new live group hosted on switch sw with the given
// capacity weight and returns its ID, bumping the topology epoch.
// The new group owns no slots yet — the caller seeds its share by
// migrating slots in (heat-aware placement), so every slot stays owned
// by a drained, consistent group throughout scale-out.
func (r *Rack) AddGroup(sw int, weight float64) int {
	if sw < 0 || sw >= len(r.fronts) {
		panic(fmt.Sprintf("rack: AddGroup on out-of-range switch %d", sw))
	}
	if !(weight > 0) || math.IsInf(weight, 1) {
		panic(fmt.Sprintf("rack: AddGroup weight %v must be positive and finite", weight))
	}
	if len(r.topo.groupSw) >= wire.NumSlots {
		panic(fmt.Sprintf("rack: cannot exceed %d groups", wire.NumSlots))
	}
	g := len(r.topo.groupSw)
	r.topo.groupSw = append(r.topo.groupSw, sw)
	r.topo.weights = append(r.topo.weights, weight)
	r.topo.live = append(r.topo.live, true)
	for _, f := range r.fronts {
		f.EnsureGroups(g + 1)
	}
	r.topo.epoch++
	r.noteTopoEpoch(g)
	return g
}

// RetireGroup marks group g permanently dead and bumps the topology
// epoch. The group must have been evacuated first: retiring a group
// that still serves slots would strand them. Group IDs are never
// reused — a retired slot in the tables stays retired, which keeps
// every historical group reference (stats, histories) valid.
func (r *Rack) RetireGroup(g int) {
	if !r.topo.Live(g) {
		panic(fmt.Sprintf("rack: RetireGroup on non-live group %d", g))
	}
	for slot, og := range r.topo.slotGroup {
		if og == g {
			panic(fmt.Sprintf("rack: RetireGroup(%d) but slot %d still routes to it", g, slot))
		}
	}
	r.topo.live[g] = false
	r.topo.weights[g] = 0
	r.topo.epoch++
	r.noteTopoEpoch(g)
}

// SetGroupWeight updates group g's capacity weight and bumps the
// topology epoch; rebalancer thresholds and client splits pick the
// new value up on their next epoch check.
func (r *Rack) SetGroupWeight(g int, w float64) {
	if !r.topo.Live(g) {
		panic(fmt.Sprintf("rack: SetGroupWeight on non-live group %d", g))
	}
	if !(w > 0) || math.IsInf(w, 1) {
		panic(fmt.Sprintf("rack: SetGroupWeight %v must be positive and finite", w))
	}
	r.topo.weights[g] = w
	r.topo.epoch++
	r.noteTopoEpoch(g)
}

// Switches returns the front-end count.
func (r *Rack) Switches() int { return len(r.fronts) }

// Groups returns the replica-group count (retired groups included —
// IDs are stable).
func (r *Rack) Groups() int { return r.topo.Groups() }

// Front returns switch s's front-end.
func (r *Rack) Front(s int) *core.Frontend { return r.fronts[s] }

// Epoch returns switch s's current incarnation ID.
func (r *Rack) Epoch(s int) uint32 { return r.epochs[s] }

// BumpEpoch advances switch s's incarnation ID (a replacement switch
// booting) and returns the new value. Other switches' epochs — and
// therefore their groups' sequence spaces and leases — are untouched.
func (r *Rack) BumpEpoch(s int) uint32 {
	r.epochs[s]++
	return r.epochs[s]
}

// SwitchOfGroup returns the switch hosting group g's scheduler
// partition.
func (r *Rack) SwitchOfGroup(g int) int { return r.topo.groupSw[g] }

// GroupsOf returns the LIVE groups hosted on switch s, in index order.
// Retired groups have no scheduler partition and take no part in
// rebalancing or switch-replacement agreements.
func (r *Rack) GroupsOf(s int) []int {
	var out []int
	for g, sw := range r.topo.groupSw {
		if sw == s && r.topo.live[g] {
			out = append(out, g)
		}
	}
	return out
}

// SwitchOfSlot returns the switch currently serving slot — the
// authoritative slot → switch map clients consult to pick a front-end.
func (r *Rack) SwitchOfSlot(slot int) int { return r.topo.slotSw[slot] }

// SwitchOfObj returns the switch currently serving id's slot.
func (r *Rack) SwitchOfObj(id wire.ObjectID) int { return r.topo.SwitchOfObj(id) }

// SlotSwitchTable returns a copy of the slot → switch map.
func (r *Rack) SlotSwitchTable() []int {
	out := make([]int, wire.NumSlots)
	copy(out, r.topo.slotSw[:])
	return out
}

// front returns slot's owning front-end.
func (r *Rack) front(slot int) *core.Frontend { return r.fronts[r.topo.slotSw[slot]] }

// RouteOf returns the group currently serving slot, read from the
// topology (the front-ends hold mirrors).
func (r *Rack) RouteOf(slot int) int { return r.topo.slotGroup[slot] }

// RouteObj returns the group currently serving id's slot.
func (r *Rack) RouteObj(id wire.ObjectID) int { return r.topo.RouteObj(id) }

// SlotTable returns a copy of the rack-wide slot → group table.
func (r *Rack) SlotTable() []int {
	out := make([]int, wire.NumSlots)
	copy(out, r.topo.slotGroup[:])
	return out
}

// SetRoute points slot at group g, transferring front-end ownership
// when g lives on a different switch: the source front-end disowns the
// slot (clearing any freeze — the handoff is over from its point of
// view) and the destination front-end picks it up thawed, with its own
// heat registers counting the slot from the first packet it serves.
// Every front-end's route mirror is updated so a later flip back needs
// no reconciliation.
func (r *Rack) SetRoute(slot, g int) {
	if !r.topo.Live(g) {
		panic(fmt.Sprintf("rack: route for slot %d to non-live group %d", slot, g))
	}
	src := r.fronts[r.topo.slotSw[slot]]
	dst := r.fronts[r.topo.groupSw[g]]
	for _, f := range r.fronts {
		f.SetRoute(slot, g)
	}
	r.topo.slotGroup[slot] = g
	if src != dst {
		src.UnfreezeSlot(slot)
		src.SetOwned(slot, false)
		// Both sides' heat entries reset: the destination counts the
		// slot from its first packet, and the source's frozen residue
		// must not re-enter the EWMA window if the slot migrates back.
		src.ClearHeat(slot)
		dst.ClearHeat(slot)
		dst.UnfreezeSlot(slot)
		dst.SetOwned(slot, true)
		r.topo.slotSw[slot] = r.topo.groupSw[g]
	}
}

// FreezeSlot starts dropping slot's client traffic on its owning
// front-end (migration window).
func (r *Rack) FreezeSlot(slot int) { r.front(slot).FreezeSlot(slot) }

// UnfreezeSlot resumes slot's client traffic on its owning front-end.
func (r *Rack) UnfreezeSlot(slot int) { r.front(slot).UnfreezeSlot(slot) }

// Frozen reports whether slot is mid-migration on its owning
// front-end.
func (r *Rack) Frozen(slot int) bool { return r.front(slot).Frozen(slot) }

// SetGroup installs (or, with nil, clears) group g's scheduler on its
// owning front-end.
func (r *Rack) SetGroup(g int, s *core.Scheduler) { r.fronts[r.topo.groupSw[g]].SetGroup(g, s) }

// SlotHeat returns the rack-wide per-slot heat sample, each slot read
// from its owning front-end's registers — after a cross-switch
// migration the destination's counters are the live ones, and any
// stale residue on the source is never consulted.
func (r *Rack) SlotHeat() []core.SlotHeat {
	out := make([]core.SlotHeat, wire.NumSlots)
	r.SlotHeatInto(out)
	return out
}

// SlotHeatInto fills dst with the rack-wide per-slot heat sample
// without allocating — the rebalancer tick's path, which would
// otherwise allocate a fresh 256-entry slice per switch per tick.
func (r *Rack) SlotHeatInto(dst []core.SlotHeat) {
	for slot := 0; slot < len(dst) && slot < wire.NumSlots; slot++ {
		dst[slot] = r.front(slot).HeatOf(slot)
	}
}

// DecayHeat runs one EWMA decay round on every front-end.
func (r *Rack) DecayHeat() {
	for _, f := range r.fronts {
		f.DecayHeat()
	}
}

// Stats returns a copy of switch s's control-plane counters.
func (r *Rack) Stats(s int) SwitchStats { return r.stats[s] }

// NoteRevokes credits n §5.3 revoke messages to switch s's agreement
// cost.
func (r *Rack) NoteRevokes(s int, n int) { r.stats[s].RevokesSent += uint64(n) }

// NoteAck credits one revocation acknowledgment to switch s.
func (r *Rack) NoteAck(s int) { r.stats[s].AcksReceived++ }

// NoteReplacement records a completed switch replacement and its
// agreement latency.
func (r *Rack) NoteReplacement(s int, latency time.Duration) {
	r.stats[s].Replacements++
	r.stats[s].LastAgreementLatency = latency
	if r.rec != nil {
		r.rec.Emit(trace.Event{
			Kind: trace.EvAgreement, Switch: int16(s), Group: -1, Slot: -1,
			Arg: uint64(latency), Arg2: r.stats[s].AgreementMsgs(),
		})
	}
}
