package rack

import (
	"testing"

	"harmonia/internal/wire"
)

// TestTopologyEpochSemantics pins the versioning contract: the epoch
// moves exactly once per MEMBERSHIP revision (add, retire, re-weight)
// and never on per-slot route flips — migrations are steady state.
func TestTopologyEpochSemantics(t *testing.T) {
	r := New(1, 2)
	topo := r.Topo()
	if topo.Epoch() != 1 {
		t.Fatalf("boot epoch = %d, want 1", topo.Epoch())
	}
	r.SetRoute(0, 1-r.RouteOf(0))
	if topo.Epoch() != 1 {
		t.Fatal("route flip bumped the topology epoch")
	}
	g := r.AddGroup(0, 1)
	if g != 2 {
		t.Fatalf("AddGroup returned %d, want 2", g)
	}
	if topo.Epoch() != 2 {
		t.Fatalf("AddGroup moved epoch to %d, want 2", topo.Epoch())
	}
	r.SetGroupWeight(g, 3)
	if topo.Epoch() != 3 {
		t.Fatalf("SetGroupWeight moved epoch to %d, want 3", topo.Epoch())
	}
	// Seed the new group one slot, evacuate group 1, retire it.
	r.SetRoute(5, g)
	for slot := 0; slot < wire.NumSlots; slot++ {
		if r.RouteOf(slot) == 1 {
			r.SetRoute(slot, 0)
		}
	}
	if topo.Epoch() != 3 {
		t.Fatal("evacuation flips bumped the topology epoch")
	}
	r.RetireGroup(1)
	if topo.Epoch() != 4 {
		t.Fatalf("RetireGroup moved epoch to %d, want 4", topo.Epoch())
	}
}

// TestTopologyLiveness covers the live/retired views: weights zero out
// on retirement, LiveGroups and GroupsOf exclude retired IDs, and IDs
// are never reused.
func TestTopologyLiveness(t *testing.T) {
	r := New(1, 3)
	topo := r.Topo()
	for slot := 0; slot < wire.NumSlots; slot++ {
		if r.RouteOf(slot) == 2 {
			r.SetRoute(slot, 0)
		}
	}
	r.RetireGroup(2)
	if r.Live(2) || topo.Weight(2) != 0 {
		t.Fatalf("retired group still live=%v weight=%v", r.Live(2), topo.Weight(2))
	}
	lw := topo.LiveWeights()
	if lw[2] != 0 || lw[0] == 0 || lw[1] == 0 {
		t.Fatalf("LiveWeights = %v", lw)
	}
	if got := r.LiveGroups(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("LiveGroups = %v", got)
	}
	if got := r.GroupsOf(0); len(got) != 2 {
		t.Fatalf("GroupsOf(0) includes retired group: %v", got)
	}
	g := r.AddGroup(0, 2)
	if g != 3 {
		t.Fatalf("new group reused an ID: got %d, want 3", g)
	}
	mask := topo.LiveMask()
	if !mask[3] || mask[2] {
		t.Fatalf("LiveMask = %v", mask)
	}
}

// TestTopologyGuards pins the panics that keep the tables consistent:
// retiring a group that still owns slots, routing to a retired group,
// and malformed AddGroup arguments.
func TestTopologyGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := New(1, 2)
	expectPanic("RetireGroup with slots", func() { r.RetireGroup(1) })
	expectPanic("AddGroup bad switch", func() { r.AddGroup(9, 1) })
	expectPanic("AddGroup bad weight", func() { r.AddGroup(0, -1) })
	for slot := 0; slot < wire.NumSlots; slot++ {
		if r.RouteOf(slot) == 1 {
			r.SetRoute(slot, 0)
		}
	}
	r.RetireGroup(1)
	expectPanic("SetRoute to retired group", func() { r.SetRoute(0, 1) })
	expectPanic("SetGroupWeight on retired group", func() { r.SetGroupWeight(1, 2) })
	expectPanic("double retire", func() { r.RetireGroup(1) })
}

// TestTopologyAddGroupCrossSwitch verifies a group added to a second
// switch serves slots there after a cross-switch flip: the slot's
// front-end ownership transfers with the route.
func TestTopologyAddGroupCrossSwitch(t *testing.T) {
	r := New(2, 2)
	g := r.AddGroup(1, 1)
	var slot int
	for s := 0; s < wire.NumSlots; s++ {
		if r.SwitchOfSlot(s) == 0 {
			slot = s
			break
		}
	}
	r.SetRoute(slot, g)
	if r.SwitchOfSlot(slot) != 1 {
		t.Fatalf("slot %d still on switch %d after flip to a switch-1 group", slot, r.SwitchOfSlot(slot))
	}
	if !r.Front(1).OwnsSlot(slot) || r.Front(0).OwnsSlot(slot) {
		t.Fatal("front-end ownership did not transfer with the route")
	}
	if r.Topo().SwitchOfGroup(g) != 1 {
		t.Fatalf("group %d hosted on switch %d, want 1", g, r.Topo().SwitchOfGroup(g))
	}
}
