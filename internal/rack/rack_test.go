package rack

import (
	"testing"
	"time"

	"harmonia/internal/wire"
)

func TestRackLayoutContiguousShards(t *testing.T) {
	r := New(4, 8)
	// Slot shards are contiguous: the slot → switch map never decreases.
	prev := 0
	for slot := 0; slot < wire.NumSlots; slot++ {
		sw := r.SwitchOfSlot(slot)
		if sw < prev {
			t.Fatalf("slot %d: switch %d after %d — shard not contiguous", slot, sw, prev)
		}
		prev = sw
	}
	// Every slot's group lives on the slot's switch.
	for slot := 0; slot < wire.NumSlots; slot++ {
		g := r.RouteOf(slot)
		if r.SwitchOfGroup(g) != r.SwitchOfSlot(slot) {
			t.Fatalf("slot %d: group %d on switch %d but slot on switch %d",
				slot, g, r.SwitchOfGroup(g), r.SwitchOfSlot(slot))
		}
	}
	// Every group owns at least one slot at boot, and every switch
	// hosts a contiguous group block.
	owned := make(map[int]int)
	for slot := 0; slot < wire.NumSlots; slot++ {
		owned[r.RouteOf(slot)]++
	}
	for g := 0; g < 8; g++ {
		if owned[g] == 0 {
			t.Fatalf("group %d owns no slots at boot", g)
		}
	}
	// Ownership masks partition the slot space exactly.
	for slot := 0; slot < wire.NumSlots; slot++ {
		owners := 0
		for s := 0; s < r.Switches(); s++ {
			if r.Front(s).OwnsSlot(slot) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("slot %d has %d owners", slot, owners)
		}
	}
}

func TestRackSingleSwitchLayoutIsHistorical(t *testing.T) {
	// With one switch the layout must be bit-identical to the
	// pre-rack striping: slot % groups.
	r := New(1, 4)
	for slot := 0; slot < wire.NumSlots; slot++ {
		if got, want := r.RouteOf(slot), wire.DefaultGroupOfSlot(slot, 4); got != want {
			t.Fatalf("slot %d: route %d, historical striping %d", slot, got, want)
		}
		if r.SwitchOfSlot(slot) != 0 {
			t.Fatalf("slot %d not on switch 0", slot)
		}
	}
}

func TestRackCrossSwitchSetRouteMovesOwnership(t *testing.T) {
	r := New(2, 4)
	// Find a slot on switch 0 and a group on switch 1.
	slot := -1
	for s := 0; s < wire.NumSlots; s++ {
		if r.SwitchOfSlot(s) == 0 {
			slot = s
			break
		}
	}
	dst := r.GroupsOf(1)[0]
	r.FreezeSlot(slot)
	if !r.Front(0).Frozen(slot) {
		t.Fatal("freeze did not land on the owning front-end")
	}
	r.SetRoute(slot, dst)
	if r.SwitchOfSlot(slot) != 1 {
		t.Fatalf("slot %d still on switch %d after cross-switch flip", slot, r.SwitchOfSlot(slot))
	}
	if r.Front(0).OwnsSlot(slot) || !r.Front(1).OwnsSlot(slot) {
		t.Fatal("front-end ownership did not transfer with the route")
	}
	if r.Front(0).Frozen(slot) || r.Front(1).Frozen(slot) {
		t.Fatal("slot should thaw through a cross-switch flip")
	}
	if r.RouteOf(slot) != dst {
		t.Fatalf("route is %d, want %d", r.RouteOf(slot), dst)
	}
	// Flip back: ownership returns.
	src := r.GroupsOf(0)[0]
	r.SetRoute(slot, src)
	if r.SwitchOfSlot(slot) != 0 || !r.Front(0).OwnsSlot(slot) {
		t.Fatal("flip back did not restore ownership")
	}
}

func TestRackEpochDomainsIndependent(t *testing.T) {
	r := New(3, 6)
	if r.Epoch(0) != 1 || r.Epoch(1) != 1 || r.Epoch(2) != 1 {
		t.Fatal("epochs should start at 1")
	}
	r.BumpEpoch(1)
	if r.Epoch(0) != 1 || r.Epoch(1) != 2 || r.Epoch(2) != 1 {
		t.Fatalf("bumping switch 1 must not disturb the others: %d %d %d",
			r.Epoch(0), r.Epoch(1), r.Epoch(2))
	}
}

func TestRackValidate(t *testing.T) {
	cases := []struct {
		switches, groups int
		ok               bool
	}{
		{1, 1, true},
		{1, 256, true},
		{4, 4, true},
		{4, 8, true},
		{8, 256, true},
		{0, 1, false},   // no switches
		{9, 16, false},  // beyond MaxSwitches
		{4, 3, false},   // more switches than groups
		{3, 256, false}, // a shard with more groups than slots
	}
	for _, tc := range cases {
		err := Validate(tc.switches, tc.groups)
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%d, %d) = %v, want ok=%v", tc.switches, tc.groups, err, tc.ok)
		}
	}
}

func TestRackStatsAccumulate(t *testing.T) {
	r := New(2, 4)
	r.NoteRevokes(1, 3)
	r.NoteAck(1)
	r.NoteAck(1)
	r.NoteReplacement(1, 5*time.Millisecond)
	st := r.Stats(1)
	if st.RevokesSent != 3 || st.AcksReceived != 2 || st.AgreementMsgs() != 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.Replacements != 1 || st.LastAgreementLatency != 5*time.Millisecond {
		t.Fatalf("replacement stats %+v", st)
	}
	if s0 := r.Stats(0); s0.AgreementMsgs() != 0 {
		t.Fatalf("switch 0 stats disturbed: %+v", s0)
	}
}

// TestRackSetRouteClearsHeatOnTransfer migrates a slot across switches
// and back: the old owner's frozen heat residue must not resurface as
// current heat — both sides start from zero after each transfer.
func TestRackSetRouteClearsHeatOnTransfer(t *testing.T) {
	r := New(2, 4)
	slot := -1
	for s := 0; s < wire.NumSlots; s++ {
		if r.SwitchOfSlot(s) == 0 {
			slot = s
			break
		}
	}
	// Simulate traffic on switch 0 by counting a packet through it.
	r.Front(0).Recv(0, heatProbe(slot))
	if r.SlotHeat()[slot].Total() == 0 {
		t.Fatal("probe did not register heat")
	}
	r.SetRoute(slot, r.GroupsOf(1)[0]) // away…
	if got := r.SlotHeat()[slot].Total(); got != 0 {
		t.Fatalf("destination inherited %d heat; must count from first packet", got)
	}
	r.SetRoute(slot, r.GroupsOf(0)[0]) // …and back
	if got := r.SlotHeat()[slot].Total(); got != 0 {
		t.Fatalf("stale source residue resurfaced as %d current heat", got)
	}
}

// heatProbe builds a client read whose object lands in the given slot.
func heatProbe(slot int) *wire.Packet {
	for id := uint32(0); ; id++ {
		if wire.SlotOf(wire.ObjectID(id)) == slot {
			return &wire.Packet{Op: wire.OpRead, ObjID: wire.ObjectID(id)}
		}
	}
}
