package rack

import (
	"math"
	"testing"

	"harmonia/internal/wire"
)

// layoutInvariants checks the properties every boot layout must hold:
// all slots owned by an in-range switch, every slot routed to a group
// of its owning switch's block, and every group owning at least one
// slot.
func layoutInvariants(t *testing.T, switches int, weights []float64, slotSw, slotGroup []int) {
	t.Helper()
	groups := len(weights)
	if len(slotSw) != wire.NumSlots || len(slotGroup) != wire.NumSlots {
		t.Fatalf("layout tables sized %d/%d, want %d", len(slotSw), len(slotGroup), wire.NumSlots)
	}
	perGroup := make([]int, groups)
	prev := 0
	for slot := 0; slot < wire.NumSlots; slot++ {
		s := slotSw[slot]
		if s < 0 || s >= switches {
			t.Fatalf("slot %d owned by out-of-range switch %d", slot, s)
		}
		if s < prev {
			t.Fatalf("slot %d breaks shard contiguity (switch %d after %d)", slot, s, prev)
		}
		prev = s
		g := slotGroup[slot]
		if g < 0 || g >= groups {
			t.Fatalf("slot %d routed to out-of-range group %d", slot, g)
		}
		lo, hi := groupRange(s, switches, groups)
		if g < lo || g >= hi {
			t.Fatalf("slot %d on switch %d routed to group %d outside block [%d,%d)", slot, s, g, lo, hi)
		}
		perGroup[g]++
	}
	for g, n := range perGroup {
		if n == 0 {
			t.Fatalf("group %d owns no slot (weights %v)", g, weights)
		}
	}
}

func TestHeteroWeightedLayoutInvariants(t *testing.T) {
	cases := []struct {
		switches int
		weights  []float64
	}{
		{1, []float64{7, 1}},
		{1, []float64{6.9e5, 1.05e5, 1.05e5}},
		{2, []float64{6.9e5, 1.05e5, 1.05e5}},
		{2, []float64{1, 1, 1, 100}},
		{3, []float64{5, 1, 1, 1, 1, 1}},
		{4, []float64{1e-6, 1, 1e6, 1, 2, 3, 4, 5}},
		{8, []float64{8, 7, 6, 5, 4, 3, 2, 1}},
		{2, []float64{1, math.Nextafter(1, 2)}}, // nearly uniform: weighted path
	}
	for _, tc := range cases {
		slotSw, slotGroup := Layout(tc.switches, tc.weights)
		layoutInvariants(t, tc.switches, tc.weights, slotSw, slotGroup)
	}
}

func TestHeteroWeightedLayoutFollowsWeights(t *testing.T) {
	// One switch, weights 3:1: the heavy group owns about three
	// quarters of the slots, exactly summing to the slot count.
	_, slotGroup := Layout(1, []float64{3, 1})
	counts := make([]int, 2)
	for _, g := range slotGroup {
		counts[g]++
	}
	if counts[0]+counts[1] != wire.NumSlots {
		t.Fatalf("slot counts %v do not cover the table", counts)
	}
	if counts[0] != 192 || counts[1] != 64 {
		t.Fatalf("3:1 weights split slots %v, want [192 64]", counts)
	}

	// Two switches, a heavy group alone behind switch 0: its shard
	// grows with its weight.
	slotSw, _ := Layout(2, []float64{3, 1, 1, 1})
	shard0 := 0
	for _, s := range slotSw {
		if s == 0 {
			shard0++
		}
	}
	// Block 0 holds groups {0,1} (weight 4), block 1 holds {2,3}
	// (weight 2): switch 0 owns two thirds of the slots.
	if want := wire.NumSlots * 2 / 3; shard0 < want-1 || shard0 > want+1 {
		t.Fatalf("weighted shard 0 owns %d slots, want ≈%d", shard0, want)
	}
}

func TestHeteroWeightedLayoutDegenerateWeights(t *testing.T) {
	// A vanishingly small weight still owns its one-slot minimum, and
	// a dominant weight cannot evict the other groups.
	weights := []float64{1e-9, 1e9, 1e-9, 1e-9}
	slotSw, slotGroup := Layout(1, weights)
	layoutInvariants(t, 1, weights, slotSw, slotGroup)
	counts := make([]int, len(weights))
	for _, g := range slotGroup {
		counts[g]++
	}
	for g := range counts {
		if g != 1 && counts[g] != 1 {
			t.Fatalf("tiny-weight group %d owns %d slots, want exactly the 1-slot floor (counts %v)", g, counts[g], counts)
		}
	}
	if counts[1] != wire.NumSlots-3 {
		t.Fatalf("dominant group owns %d slots, want %d", counts[1], wire.NumSlots-3)
	}

	// Minimum floors across switches: 8 switches, the last block
	// nearly weightless, still owns one slot per group.
	w8 := []float64{100, 100, 100, 100, 100, 100, 100, 1e-9}
	slotSw, slotGroup = Layout(8, w8)
	layoutInvariants(t, 8, w8, slotSw, slotGroup)
}

func TestHeteroWeightedLayoutUniformEquivalence(t *testing.T) {
	// Equal weights — whatever their absolute value — reproduce the
	// historical uniform layout bit for bit, for every assemblable
	// shape. This is the nil-GroupSpecs compatibility guarantee.
	for _, scale := range []float64{1, 2.5, 9.2e5} {
		for switches := 1; switches <= 4; switches++ {
			for groups := switches; groups <= 4*switches; groups += switches {
				w := make([]float64, groups)
				for i := range w {
					w[i] = scale
				}
				if ValidateWeights(switches, w) != nil {
					continue
				}
				slotSw, slotGroup := Layout(switches, w)
				for slot := 0; slot < wire.NumSlots; slot++ {
					if got, want := slotSw[slot], SwitchOfSlotIn(slot, switches); got != want {
						t.Fatalf("%d switches × %d groups: slot %d on switch %d, historical %d", switches, groups, slot, got, want)
					}
					if got, want := slotGroup[slot], DefaultGroupOfSlotIn(slot, switches, groups); got != want {
						t.Fatalf("%d switches × %d groups: slot %d routed to %d, historical %d", switches, groups, slot, got, want)
					}
				}
			}
		}
	}
	// Single-switch check against the wire-level striping too.
	w := []float64{4, 4, 4}
	_, slotGroup := Layout(1, w)
	for slot, g := range slotGroup {
		if want := wire.DefaultGroupOfSlot(slot, 3); g != want {
			t.Fatalf("single switch uniform: slot %d → %d, wire striping %d", slot, g, want)
		}
	}
}

func TestHeteroValidateWeights(t *testing.T) {
	bad := []struct {
		switches int
		weights  []float64
	}{
		{0, []float64{1}},
		{9, []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{2, []float64{1}},              // fewer groups than switches
		{1, []float64{0}},              // zero weight
		{1, []float64{-1, 1}},          // negative weight
		{1, []float64{math.NaN(), 1}},  // NaN weight
		{1, []float64{math.Inf(1), 1}}, // infinite weight
		{1, make([]float64, 300)},      // more groups than slots (also zero)
	}
	for _, tc := range bad {
		if err := ValidateWeights(tc.switches, tc.weights); err == nil {
			t.Fatalf("ValidateWeights(%d, %v) accepted", tc.switches, tc.weights)
		}
	}
	good := []struct {
		switches int
		weights  []float64
	}{
		{1, []float64{1}},
		{1, []float64{1e-12, 1e12}},
		{2, []float64{7, 1, 1}},
		{8, []float64{1, 2, 3, 4, 5, 6, 7, 8}},
	}
	for _, tc := range good {
		if err := ValidateWeights(tc.switches, tc.weights); err != nil {
			t.Fatalf("ValidateWeights(%d, %v): %v", tc.switches, tc.weights, err)
		}
	}
	// The uniform special case inherits the uniform layout's shape
	// constraints (here: trivially satisfiable, must agree with
	// Validate).
	if err := ValidateWeights(4, []float64{1, 1, 1, 1}); err != nil {
		t.Fatalf("uniform ValidateWeights: %v", err)
	}
	if (Validate(4, 4) == nil) != (ValidateWeights(4, []float64{1, 1, 1, 1}) == nil) {
		t.Fatal("uniform ValidateWeights disagrees with Validate")
	}
}

func TestHeteroNewWeightedRackRoutes(t *testing.T) {
	weights := []float64{6, 1, 1}
	r := NewWeighted(2, weights)
	if r.Switches() != 2 || r.Groups() != 3 {
		t.Fatalf("rack shape %d×%d", r.Switches(), r.Groups())
	}
	// Routing tables agree with the pure layout and with per-front
	// ownership.
	slotSw, slotGroup := Layout(2, weights)
	for slot := 0; slot < wire.NumSlots; slot++ {
		if r.SwitchOfSlot(slot) != slotSw[slot] {
			t.Fatalf("slot %d on switch %d, layout says %d", slot, r.SwitchOfSlot(slot), slotSw[slot])
		}
		if r.RouteOf(slot) != slotGroup[slot] {
			t.Fatalf("slot %d routed to %d, layout says %d", slot, r.RouteOf(slot), slotGroup[slot])
		}
		for s := 0; s < r.Switches(); s++ {
			if owned := r.Front(s).OwnsSlot(slot); owned != (s == slotSw[slot]) {
				t.Fatalf("front %d ownership of slot %d = %v", s, slot, owned)
			}
		}
	}
	// The heavy group's switch owns the bigger shard.
	if a, b := r.Front(0).OwnedSlots(), r.Front(1).OwnedSlots(); a <= b {
		t.Fatalf("heavy switch owns %d slots vs %d", a, b)
	}
}
