// harmonia-model runs the explicit-state model checker over the
// protocol specification mirrored from the paper's Appendix B,
// checking the Linearizability invariant for bounded configurations in
// both protocol classes, with optional seeded bugs to demonstrate the
// checker catches them.
//
// Usage:
//
//	harmonia-model [-items 2] [-replicas 2] [-switches 1]
//	               [-writes 2] [-reads 2] [-readbehind]
//	               [-break none|commit|active|ready]
package main

import (
	"flag"
	"fmt"
	"os"

	"harmonia/internal/model"
)

func main() {
	items := flag.Int("items", 2, "data items")
	replicas := flag.Int("replicas", 2, "replicas")
	switches := flag.Int("switches", 1, "switch incarnations (2+ exercises failover)")
	writes := flag.Int("writes", 2, "bound on SendWrite actions")
	reads := flag.Int("reads", 2, "bound on SendRead actions")
	readBehind := flag.Bool("readbehind", false, "check the read-behind class (default read-ahead)")
	breakWhat := flag.String("break", "none", "seed a bug: none | commit | active | ready")
	maxStates := flag.Int("maxstates", 0, "state cap (0 = default)")
	flag.Parse()

	cfg := model.Config{
		DataItems: *items, Replicas: *replicas, Switches: *switches,
		MaxWrites: *writes, MaxReads: *reads, ReadBehind: *readBehind,
		MaxStates: *maxStates,
	}
	switch *breakWhat {
	case "none":
	case "commit":
		cfg.SkipCommitCheck = true
	case "active":
		cfg.SkipActiveSwitchCheck = true
	case "ready":
		cfg.SkipReadyGate = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -break %q\n", *breakWhat)
		os.Exit(2)
	}

	res := model.Check(cfg)
	fmt.Printf("explored %d states\n", res.States)
	switch {
	case res.LimitHit:
		fmt.Println("UNDECIDED: state cap reached; raise -maxstates or shrink bounds")
		os.Exit(3)
	case res.Violation:
		fmt.Println("LINEARIZABILITY VIOLATED; counterexample:")
		for i, a := range res.Trace {
			fmt.Printf("  %2d. %s\n", i, a)
		}
		os.Exit(1)
	default:
		fmt.Println("invariant holds for these bounds")
	}
}
