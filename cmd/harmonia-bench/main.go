// harmonia-bench regenerates the paper's evaluation figures (§9) from
// the simulated testbed and prints the series as tab-separated tables.
//
// Usage:
//
//	harmonia-bench [-scale 1.0] [-fig all|5a|5b|6a|6b|7a|7b|7c|8|9a|9b|10|S|R|A|M|ablations]
package main

import (
	"flag"
	"fmt"
	"os"

	"harmonia/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "measurement-window multiplier (lower = faster, noisier)")
	fig := flag.String("fig", "all", "figure to regenerate (5a 5b 6a 6b 7a 7b 7c 8 9a 9b 10 S R A M ablations all)")
	flag.Parse()
	s := experiments.Scale(*scale)

	runners := []struct {
		name, title, xlabel, ylabel string
		run                         func() []experiments.Series
	}{
		{"5a", "Figure 5(a): latency vs throughput, read-only, 3 replicas",
			"throughput (MRPS)", "mean latency (ms)",
			func() []experiments.Series { return experiments.Fig5a(s) }},
		{"5b", "Figure 5(b): latency vs throughput, write-only, 3 replicas",
			"throughput (MRPS)", "mean latency (ms)",
			func() []experiments.Series { return experiments.Fig5b(s) }},
		{"6a", "Figure 6(a): read throughput vs write rate, 3 replicas",
			"write throughput (MRPS)", "read throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig6a(s) }},
		{"6b", "Figure 6(b): total throughput vs write ratio, 3 replicas",
			"write ratio (%)", "throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig6b(s) }},
		{"7a", "Figure 7(a): scalability, read-only workload",
			"replicas", "throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig7(s, 0) }},
		{"7b", "Figure 7(b): scalability, write-only workload",
			"replicas", "throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig7(s, 1) }},
		{"7c", "Figure 7(c): scalability, 5% writes",
			"replicas", "throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig7(s, 0.05) }},
		{"8", "Figure 8: throughput vs dirty-set hash-table slots (5% writes)",
			"slots", "throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig8(s) }},
		{"9a", "Figure 9(a): primary-backup family, reads vs write rate",
			"write throughput (MRPS)", "read throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig9(s, "pb") }},
		{"9b", "Figure 9(b): quorum family, reads vs write rate",
			"write throughput (MRPS)", "read throughput (MRPS)",
			func() []experiments.Series { return experiments.Fig9(s, "quorum") }},
		{"10", "Figure 10: throughput during switch stop/reactivate (ms, 1000:1 compressed)",
			"time (ms)", "throughput (MRPS)",
			func() []experiments.Series { return []experiments.Series{experiments.Fig10(s)} }},
		{"S", "Figure S: aggregate throughput vs replica-group count (sharded, 5% writes, zipf-0.9)",
			"groups", "throughput (MRPS)",
			func() []experiments.Series { return experiments.FigS(s) }},
		{"R", "Figure R: throughput while a pinned hot spot's slots migrate off the hot group (online rebalance)",
			"time (ms)", "throughput (MRPS)",
			func() []experiments.Series { return experiments.FigR(s) }},
		{"A", "Figure A: autonomous rebalancer converging an unpinned zipf-1.2 hot spot (switch heat counters, no hints)",
			"time (ms)", "throughput (MRPS)",
			func() []experiments.Series { return experiments.FigA(s) }},
		{"M", "Figure M: multi-switch rack scaling (2 groups/switch) and one-switch crash economics",
			"switches", "throughput (MRPS)",
			func() []experiments.Series { return experiments.FigM(s) }},
		{"ablations", "Ablations (DESIGN.md §6)",
			"-", "see series names",
			func() []experiments.Series {
				var out []experiments.Series
				out = append(out, tag("eager-completions: ", experiments.AblationEagerCompletions(s))...)
				out = append(out, tag("lazy-cleanup: ", experiments.AblationLazyCleanup(s))...)
				out = append(out, tag("stages: ", experiments.AblationStages(s))...)
				return out
			}},
	}

	found := false
	for _, r := range runners {
		if *fig != "all" && *fig != r.name {
			continue
		}
		found = true
		fmt.Printf("== %s ==\n", r.title)
		series := r.run()
		fmt.Printf("%-24s %16s %16s\n", "series", r.xlabel, r.ylabel)
		for _, sr := range series {
			for _, p := range sr.Points {
				fmt.Printf("%-24s %16.3f %16.3f\n", sr.Name, p.X, p.Y)
			}
		}
		fmt.Println()
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func tag(prefix string, ss []experiments.Series) []experiments.Series {
	for i := range ss {
		ss[i].Name = prefix + ss[i].Name
	}
	return ss
}
