// harmonia-bench regenerates the paper's evaluation figures (§9) from
// the simulated testbed and prints the series as tab-separated tables.
//
// Usage:
//
//	harmonia-bench [-scale 1.0] [-fig all|5a|5b|6a|6b|7a|7b|7c|8|9a|9b|10|S|R|A|M|H|ablations]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harmonia/internal/experiments"
)

// runners is the figure registry: names, titles, axis labels, and the
// experiment entry points. The -fig flag's usage string and its
// unknown-value error both enumerate this table, so the valid names —
// including the repo-grown S/R/A/M/H figures — are always discoverable
// from the CLI itself.
var runners = []struct {
	name, title, xlabel, ylabel string
	run                         func(experiments.Scale) []experiments.Series
}{
	{"5a", "Figure 5(a): latency vs throughput, read-only, 3 replicas",
		"throughput (MRPS)", "mean latency (ms)", experiments.Fig5a},
	{"5b", "Figure 5(b): latency vs throughput, write-only, 3 replicas",
		"throughput (MRPS)", "mean latency (ms)", experiments.Fig5b},
	{"6a", "Figure 6(a): read throughput vs write rate, 3 replicas",
		"write throughput (MRPS)", "read throughput (MRPS)", experiments.Fig6a},
	{"6b", "Figure 6(b): total throughput vs write ratio, 3 replicas",
		"write ratio (%)", "throughput (MRPS)", experiments.Fig6b},
	{"7a", "Figure 7(a): scalability, read-only workload",
		"replicas", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig7(s, 0) }},
	{"7b", "Figure 7(b): scalability, write-only workload",
		"replicas", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig7(s, 1) }},
	{"7c", "Figure 7(c): scalability, 5% writes",
		"replicas", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig7(s, 0.05) }},
	{"8", "Figure 8: throughput vs dirty-set hash-table slots (5% writes)",
		"slots", "throughput (MRPS)", experiments.Fig8},
	{"9a", "Figure 9(a): primary-backup family, reads vs write rate",
		"write throughput (MRPS)", "read throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig9(s, "pb") }},
	{"9b", "Figure 9(b): quorum family, reads vs write rate",
		"write throughput (MRPS)", "read throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig9(s, "quorum") }},
	{"10", "Figure 10: throughput during switch stop/reactivate (ms, 1000:1 compressed)",
		"time (ms)", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series {
			return []experiments.Series{experiments.Fig10(s)}
		}},
	{"S", "Figure S: aggregate throughput vs replica-group count (sharded, 5% writes, zipf-0.9)",
		"groups", "throughput (MRPS)", experiments.FigS},
	{"R", "Figure R: throughput while a pinned hot spot's slots migrate off the hot group (online rebalance)",
		"time (ms)", "throughput (MRPS)", experiments.FigR},
	{"A", "Figure A: autonomous rebalancer converging an unpinned zipf-1.2 hot spot (switch heat counters, no hints)",
		"time (ms)", "throughput (MRPS)", experiments.FigA},
	{"M", "Figure M: multi-switch rack scaling (2 groups/switch) and one-switch crash economics",
		"switches", "throughput (MRPS)", experiments.FigM},
	{"H", "Figure H: heterogeneous rack (CR×7 + 2×NOPaxos×3, weighted shards) vs the uniform misconfiguration",
		"group", "throughput (MRPS)", experiments.FigH},
	{"ablations", "Ablations (DESIGN.md §6)",
		"-", "see series names",
		func(s experiments.Scale) []experiments.Series {
			var out []experiments.Series
			out = append(out, tag("eager-completions: ", experiments.AblationEagerCompletions(s))...)
			out = append(out, tag("lazy-cleanup: ", experiments.AblationLazyCleanup(s))...)
			out = append(out, tag("stages: ", experiments.AblationStages(s))...)
			return out
		}},
}

// figNames lists the registry's figure names in presentation order.
func figNames() []string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.name
	}
	return out
}

func main() {
	scale := flag.Float64("scale", 1.0, "measurement-window multiplier (lower = faster, noisier)")
	fig := flag.String("fig", "all", "figure to regenerate: one of "+strings.Join(figNames(), " ")+", or all")
	flag.Parse()
	s := experiments.Scale(*scale)

	found := false
	for _, r := range runners {
		if *fig != "all" && *fig != r.name {
			continue
		}
		found = true
		fmt.Printf("== %s ==\n", r.title)
		series := r.run(s)
		fmt.Printf("%-24s %16s %16s\n", "series", r.xlabel, r.ylabel)
		for _, sr := range series {
			for _, p := range sr.Points {
				fmt.Printf("%-24s %16.3f %16.3f\n", sr.Name, p.X, p.Y)
			}
		}
		fmt.Println()
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown figure %q: available figures are %s, or all\n",
			*fig, strings.Join(figNames(), " "))
		os.Exit(2)
	}
}

func tag(prefix string, ss []experiments.Series) []experiments.Series {
	for i := range ss {
		ss[i].Name = prefix + ss[i].Name
	}
	return ss
}
