// harmonia-bench regenerates the paper's evaluation figures (§9) from
// the simulated testbed and prints the series as tab-separated tables.
//
// Usage:
//
//	harmonia-bench [-scale 1.0] [-fig all|5a|5b|6a|6b|7a|7b|7c|8|9a|9b|10|S|R|A|M|H|P|E|K|ablations]
//	               [-json dir] [-baseline BENCH_figP.json] [-trace dir]
//	               [-cpuprofile cpu.out] [-memprofile mem.out]
//
// With -json, every figure run additionally writes a machine-readable
// BENCH_fig<name>.json snapshot (wall time, heap allocations, and the
// plotted series; figure P carries the full simulator-perf block) into
// dir, so the perf trajectory is tracked per PR instead of anecdotal.
// -baseline embeds a previous run's figure-P perf block as the
// comparison baseline and reports the speedup against it.
//
// With -trace, the control-plane-heavy figures (E, K) additionally dump
// their cluster's flight recorder as Chrome trace_event JSON
// (TRACE_fig<name>.json) into dir: slot migrations, rebalancer rounds
// and vetoes, hot-key promote/invalidate/refresh/demote cycles,
// topology epoch bumps, §5.3 agreements, and switch crashes on a
// timeline openable in chrome://tracing or ui.perfetto.dev.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"harmonia/internal/experiments"
)

// runners is the figure registry: names, titles, axis labels, and the
// experiment entry points. The -fig flag's usage string and its
// unknown-value error both enumerate this table, so the valid names —
// including the repo-grown S/R/A/M/H/P figures — are always
// discoverable from the CLI itself. Figures with a detail hook also
// contribute a perf block to their JSON snapshot.
var runners = []struct {
	name, title, xlabel, ylabel string
	run                         func(experiments.Scale) []experiments.Series
	detail                      func(experiments.Scale) ([]experiments.Series, experiments.PerfSnapshot)
}{
	{"5a", "Figure 5(a): latency vs throughput, read-only, 3 replicas",
		"throughput (MRPS)", "mean latency (ms)", experiments.Fig5a, nil},
	{"5b", "Figure 5(b): latency vs throughput, write-only, 3 replicas",
		"throughput (MRPS)", "mean latency (ms)", experiments.Fig5b, nil},
	{"6a", "Figure 6(a): read throughput vs write rate, 3 replicas",
		"write throughput (MRPS)", "read throughput (MRPS)", experiments.Fig6a, nil},
	{"6b", "Figure 6(b): total throughput vs write ratio, 3 replicas",
		"write ratio (%)", "throughput (MRPS)", experiments.Fig6b, nil},
	{"7a", "Figure 7(a): scalability, read-only workload",
		"replicas", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig7(s, 0) }, nil},
	{"7b", "Figure 7(b): scalability, write-only workload",
		"replicas", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig7(s, 1) }, nil},
	{"7c", "Figure 7(c): scalability, 5% writes",
		"replicas", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig7(s, 0.05) }, nil},
	{"8", "Figure 8: throughput vs dirty-set hash-table slots (5% writes)",
		"slots", "throughput (MRPS)", experiments.Fig8, nil},
	{"9a", "Figure 9(a): primary-backup family, reads vs write rate",
		"write throughput (MRPS)", "read throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig9(s, "pb") }, nil},
	{"9b", "Figure 9(b): quorum family, reads vs write rate",
		"write throughput (MRPS)", "read throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series { return experiments.Fig9(s, "quorum") }, nil},
	{"10", "Figure 10: throughput during switch stop/reactivate (ms, 1000:1 compressed)",
		"time (ms)", "throughput (MRPS)",
		func(s experiments.Scale) []experiments.Series {
			return []experiments.Series{experiments.Fig10(s)}
		}, nil},
	{"S", "Figure S: aggregate throughput vs replica-group count (sharded, 5% writes, zipf-0.9)",
		"groups", "throughput (MRPS)", experiments.FigS, nil},
	{"R", "Figure R: throughput while a pinned hot spot's slots migrate off the hot group (online rebalance)",
		"time (ms)", "throughput (MRPS)", experiments.FigR, nil},
	{"A", "Figure A: autonomous rebalancer converging an unpinned zipf-1.2 hot spot (switch heat counters, no hints)",
		"time (ms)", "throughput (MRPS)", experiments.FigA, nil},
	{"M", "Figure M: multi-switch rack scaling (2 groups/switch) and one-switch crash economics",
		"switches", "throughput (MRPS)", experiments.FigM, nil},
	{"H", "Figure H: heterogeneous rack (CR×7 + 2×NOPaxos×3, weighted shards) vs the uniform misconfiguration",
		"group", "throughput (MRPS)", experiments.FigH, nil},
	{"P", "Figure P: open-loop latency vs throughput, 4-switch weighted rack (simulator perf snapshot)",
		"throughput (MRPS)", "latency (ms)", experiments.FigPerf, experiments.FigPerfDetail},
	{"E", "Figure E: elastic scale-out 4→8 groups under open-loop load, then dead-switch reassignment",
		"time (ms)", "throughput (MRPS)", experiments.FigE, nil},
	{"K", "Figure K: celebrity-key workload, auto-rebalance baseline vs per-key hot replication",
		"-", "aggregate throughput (MRPS)", experiments.FigK, nil},
	{"ablations", "Ablations (DESIGN.md §6)",
		"-", "see series names",
		func(s experiments.Scale) []experiments.Series {
			var out []experiments.Series
			out = append(out, tag("eager-completions: ", experiments.AblationEagerCompletions(s))...)
			out = append(out, tag("lazy-cleanup: ", experiments.AblationLazyCleanup(s))...)
			out = append(out, tag("stages: ", experiments.AblationStages(s))...)
			return out
		}, nil},
}

// figNames lists the registry's figure names in presentation order.
func figNames() []string {
	out := make([]string, len(runners))
	for i, r := range runners {
		out[i] = r.name
	}
	return out
}

// jsonSeries is the serialized form of one curve: points as [x, y]
// pairs.
type jsonSeries struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

// perfBlock pairs the current figure-P snapshot with the baseline it
// is judged against. The tracked BENCH_figP.json keeps both, so the
// speedup claim is reproducible from the one file.
type perfBlock struct {
	Current  experiments.PerfSnapshot  `json:"current"`
	Baseline *experiments.PerfSnapshot `json:"baseline,omitempty"`
	// SpeedupVsBaseline is current.ops_per_wall_sec over the
	// baseline's — how much faster the simulator pushes the same rack.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// benchSnapshot is the per-figure BENCH_fig<name>.json schema.
type benchSnapshot struct {
	Figure string  `json:"figure"`
	Title  string  `json:"title"`
	Scale  float64 `json:"scale"`
	// WallSeconds, Allocs, and AllocBytes cover the whole figure run:
	// the regeneration cost tracked PR over PR.
	WallSeconds float64      `json:"wall_seconds"`
	Allocs      uint64       `json:"allocs"`
	AllocBytes  uint64       `json:"alloc_bytes"`
	Series      []jsonSeries `json:"series"`
	Perf        *perfBlock   `json:"perf,omitempty"`
}

// loadBaseline pulls the figure-P perf block out of a previous
// snapshot file.
func loadBaseline(path string) (*experiments.PerfSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, err
	}
	if snap.Perf == nil {
		return nil, fmt.Errorf("%s: no perf block to use as baseline", path)
	}
	return &snap.Perf.Current, nil
}

func main() {
	scale := flag.Float64("scale", 1.0, "measurement-window multiplier (lower = faster, noisier)")
	fig := flag.String("fig", "all", "figure to regenerate: one of "+strings.Join(figNames(), " ")+", or all")
	jsonDir := flag.String("json", "", "directory to write BENCH_fig<name>.json snapshots into")
	baseline := flag.String("baseline", "", "previous BENCH_figP.json whose perf block becomes the comparison baseline")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceDir := flag.String("trace", "", "directory to dump control-plane flight-recorder timelines into (TRACE_fig<name>.json, Chrome trace_event format; figures E and K)")
	maxAllocs := flag.Float64("max-allocs-per-op", 0, "fail (exit 1) if the figure-P perf run exceeds this many allocs/op (0 = no gate)")
	minSpeedup := flag.Float64("min-speedup", 0, "fail (exit 1) if figure-P ops/wall-sec drops below this fraction of the -baseline snapshot (0 = no gate)")
	flag.Parse()
	s := experiments.Scale(*scale)
	experiments.TraceDir = *traceDir

	var base *experiments.PerfSnapshot
	if *baseline != "" {
		var err error
		if base, err = loadBaseline(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
			os.Exit(1)
		}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	found := false
	for _, r := range runners {
		if *fig != "all" && *fig != r.name {
			continue
		}
		found = true
		fmt.Printf("== %s ==\n", r.title)
		snap := benchSnapshot{Figure: r.name, Title: r.title, Scale: *scale}
		var series []experiments.Series
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		if r.detail != nil {
			var perf experiments.PerfSnapshot
			series, perf = r.detail(s)
			pb := &perfBlock{Current: perf, Baseline: base}
			if base != nil && base.OpsPerWallSec > 0 {
				pb.SpeedupVsBaseline = perf.OpsPerWallSec / base.OpsPerWallSec
			}
			snap.Perf = pb
		} else {
			series = r.run(s)
		}
		snap.WallSeconds = time.Since(t0).Seconds()
		runtime.ReadMemStats(&m1)
		snap.Allocs = m1.Mallocs - m0.Mallocs
		snap.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
		fmt.Printf("%-24s %16s %16s\n", "series", r.xlabel, r.ylabel)
		for _, sr := range series {
			js := jsonSeries{Name: sr.Name}
			for _, p := range sr.Points {
				fmt.Printf("%-24s %16.3f %16.3f\n", sr.Name, p.X, p.Y)
				js.Points = append(js.Points, [2]float64{p.X, p.Y})
			}
			snap.Series = append(snap.Series, js)
		}
		if snap.Perf != nil {
			c := snap.Perf.Current
			fmt.Printf("perf: %.0f sim ops in %.2fs wall = %.0f ops/wall-sec (%.0f ns/op, %.2f allocs/op)\n",
				float64(c.SimOps), c.WallSeconds, c.OpsPerWallSec, c.NsPerOp, c.AllocsPerOp)
			if snap.Perf.SpeedupVsBaseline > 0 {
				fmt.Printf("perf: %.2fx ops/wall-sec vs baseline (%.0f)\n",
					snap.Perf.SpeedupVsBaseline, snap.Perf.Baseline.OpsPerWallSec)
			}
			fmt.Printf("perf: linearizable under chaos: %v\n", c.Linearizable)
		}
		if *jsonDir != "" {
			if err := writeSnapshot(*jsonDir, snap); err != nil {
				fmt.Fprintf(os.Stderr, "json: %v\n", err)
				os.Exit(1)
			}
		}
		if snap.Perf != nil {
			// Regression gates for CI, checked after the snapshot is on
			// disk so a failing run still uploads its numbers. allocs/op
			// is deterministic and machine-independent, so it gets a hard
			// bound; wall-clock speed varies across runners, so the
			// speedup floor should be set well below 1 (it catches
			// order-of-magnitude regressions like an accidental O(n)
			// probe, not few-percent noise).
			c := snap.Perf.Current
			if *maxAllocs > 0 && c.AllocsPerOp > *maxAllocs {
				fmt.Fprintf(os.Stderr, "perf gate: %.2f allocs/op exceeds the %.2f bound\n",
					c.AllocsPerOp, *maxAllocs)
				os.Exit(1)
			}
			if *minSpeedup > 0 && snap.Perf.SpeedupVsBaseline > 0 &&
				snap.Perf.SpeedupVsBaseline < *minSpeedup {
				fmt.Fprintf(os.Stderr, "perf gate: %.2fx ops/wall-sec vs baseline is below the %.2fx floor\n",
					snap.Perf.SpeedupVsBaseline, *minSpeedup)
				os.Exit(1)
			}
		}
		fmt.Println()
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown figure %q: available figures are %s, or all\n",
			*fig, strings.Join(figNames(), " "))
		os.Exit(2)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
}

// writeSnapshot serializes one figure snapshot into dir.
func writeSnapshot(dir string, snap benchSnapshot) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return os.WriteFile(filepath.Join(dir, "BENCH_fig"+snap.Figure+".json"), b, 0o644)
}

func tag(prefix string, ss []experiments.Series) []experiments.Series {
	for i := range ss {
		ss[i].Name = prefix + ss[i].Name
	}
	return ss
}
