// harmonia-calc evaluates the paper's §6.2 switch-resource model: how
// many concurrent writes a dirty set of n stages × m slots can track,
// and what request rates that supports.
//
// Usage:
//
//	harmonia-calc [-stages 3] [-slots 64000] [-util 0.5]
//	              [-writems 1.0] [-writeratio 0.05]
package main

import (
	"flag"
	"fmt"

	"harmonia/internal/dataplane"
)

func main() {
	stages := flag.Int("stages", 3, "pipeline stages used by the hash table (n)")
	slots := flag.Int("slots", 64000, "register slots per stage (m)")
	util := flag.Float64("util", 0.5, "effective table utilization (u)")
	writeMS := flag.Float64("writems", 1.0, "write duration in milliseconds (t)")
	ratio := flag.Float64("writeratio", 0.05, "write fraction of the workload (w)")
	idBits := flag.Int("idbits", 32, "object-ID width in bits")
	seqBits := flag.Int("seqbits", 32, "sequence-number width in bits")
	flag.Parse()

	r := dataplane.ResourceModel{
		Stages:        *stages,
		SlotsPerStage: *slots,
		Utilization:   *util,
		WriteSeconds:  *writeMS / 1000,
		WriteRatio:    *ratio,
		IDBits:        *idBits,
		SeqBits:       *seqBits,
	}
	fmt.Printf("dirty set: %d stages x %d slots, utilization %.0f%%\n",
		r.Stages, r.SlotsPerStage, r.Utilization*100)
	fmt.Printf("concurrent tracked writes: %.0f\n", r.ConcurrentWrites())
	fmt.Printf("supported write rate:      %.1f MRPS\n", r.WriteRate()/1e6)
	fmt.Printf("supported total rate:      %.2f BRPS (at %.0f%% writes)\n",
		r.TotalRate()/1e9, r.WriteRatio*100)
	fmt.Printf("switch memory:             %.2f MB\n", r.MemoryBytes()/1e6)
	def := dataplane.PaperExample()
	if r == def {
		fmt.Println("(these are the paper's §6.2 example numbers: 96 MRPS writes, 1.92 BRPS total, 1.5 MB)")
	}
}
