module harmonia

go 1.24
