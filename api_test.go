// Table-driven coverage for the public Config surface plus a smoke
// test that a short Run populates every Report and SwitchStats field.
package harmonia

import (
	"testing"
	"time"
)

func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"defaults", Config{}, false},
		{"chain harmonia", Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true}, false},
		{"vr pair", Config{Protocol: ViewstampedReplication, Replicas: 2}, false},
		{"sharded", Config{Protocol: ChainReplication, Groups: 4, UseHarmonia: true}, false},
		{"max groups", Config{Protocol: ChainReplication, Groups: MaxGroups}, false},
		{"protocol below range", Config{Protocol: Protocol(-1)}, true},
		{"protocol above range", Config{Protocol: Protocol(99)}, true},
		{"craq with harmonia", Config{Protocol: CRAQ, UseHarmonia: true}, true},
		{"negative replicas", Config{Replicas: -1}, true},
		{"vr singleton", Config{Protocol: ViewstampedReplication, Replicas: 1}, true},
		{"negative stages", Config{Stages: -1}, true},
		{"negative slots", Config{SlotsPerStage: -5}, true},
		{"negative groups", Config{Groups: -1}, true},
		{"too many groups", Config{Groups: MaxGroups + 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%+v) err = %v, wantErr %v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

func TestReportAndSwitchStatsPopulated(t *testing.T) {
	c, err := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run(LoadSpec{
		Clients: 32, Duration: 15 * time.Millisecond, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.1, Keys: 2000,
	})
	if rep.Ops == 0 || rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("counts empty: %+v", rep)
	}
	if rep.Ops != rep.Reads+rep.Writes {
		t.Fatalf("ops %d != reads %d + writes %d", rep.Ops, rep.Reads, rep.Writes)
	}
	if rep.Throughput <= 0 || rep.ReadThroughput <= 0 || rep.WriteThroughput <= 0 {
		t.Fatalf("throughputs empty: %+v", rep)
	}
	if rep.MeanLatency <= 0 || rep.P50Latency <= 0 || rep.P99Latency < rep.P50Latency {
		t.Fatalf("latency stats inconsistent: %+v", rep)
	}
	if len(rep.GroupOps) != 1 || rep.GroupOps[0] != rep.Ops {
		t.Fatalf("single-group GroupOps wrong: %v vs ops %d", rep.GroupOps, rep.Ops)
	}
	st := c.SwitchStats()
	if st.Writes == 0 || st.FastReads == 0 || st.Completions == 0 {
		t.Fatalf("switch stats empty: %+v", st)
	}
	if st.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch)
	}
	if c.Groups() != 1 {
		t.Fatalf("Groups() = %d, want 1", c.Groups())
	}
}
