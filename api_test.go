// Table-driven coverage for the public Config surface plus a smoke
// test that a short Run populates every Report and SwitchStats field.
package harmonia

import (
	"testing"
	"time"
)

func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"defaults", Config{}, false},
		{"chain harmonia", Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true}, false},
		{"vr pair", Config{Protocol: ViewstampedReplication, Replicas: 2}, false},
		{"sharded", Config{Protocol: ChainReplication, Groups: 4, UseHarmonia: true}, false},
		{"max groups", Config{Protocol: ChainReplication, Groups: MaxGroups}, false},
		{"protocol below range", Config{Protocol: Protocol(-1)}, true},
		{"protocol above range", Config{Protocol: Protocol(99)}, true},
		{"craq with harmonia", Config{Protocol: CRAQ, UseHarmonia: true}, true},
		{"negative replicas", Config{Replicas: -1}, true},
		{"vr singleton", Config{Protocol: ViewstampedReplication, Replicas: 1}, true},
		{"negative stages", Config{Stages: -1}, true},
		{"negative slots", Config{SlotsPerStage: -5}, true},
		{"negative groups", Config{Groups: -1}, true},
		{"too many groups", Config{Groups: MaxGroups + 1}, true},
		{"multi-switch", Config{Protocol: ChainReplication, Groups: 4, Switches: 2, UseHarmonia: true}, false},
		{"max switches", Config{Protocol: ChainReplication, Groups: MaxSwitches, Switches: MaxSwitches}, false},
		{"negative switches", Config{Switches: -1}, true},
		{"too many switches", Config{Groups: 16, Switches: MaxSwitches + 1}, true},
		{"more switches than groups", Config{Groups: 2, Switches: 4}, true},
		{"switches without groups", Config{Switches: 4}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%+v) err = %v, wantErr %v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

func TestReportAndSwitchStatsPopulated(t *testing.T) {
	c, err := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run(LoadSpec{
		Clients: 32, Duration: 15 * time.Millisecond, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.1, Keys: 2000,
	})
	if rep.Ops == 0 || rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("counts empty: %+v", rep)
	}
	if rep.Ops != rep.Reads+rep.Writes {
		t.Fatalf("ops %d != reads %d + writes %d", rep.Ops, rep.Reads, rep.Writes)
	}
	if rep.Throughput <= 0 || rep.ReadThroughput <= 0 || rep.WriteThroughput <= 0 {
		t.Fatalf("throughputs empty: %+v", rep)
	}
	if rep.MeanLatency <= 0 || rep.P50Latency <= 0 || rep.P99Latency < rep.P50Latency {
		t.Fatalf("latency stats inconsistent: %+v", rep)
	}
	if len(rep.GroupOps) != 1 || rep.GroupOps[0] != rep.Ops {
		t.Fatalf("single-group GroupOps wrong: %v vs ops %d", rep.GroupOps, rep.Ops)
	}
	st := c.SwitchStats()
	if st.Writes == 0 || st.FastReads == 0 || st.Completions == 0 {
		t.Fatalf("switch stats empty: %+v", st)
	}
	if st.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch)
	}
	if c.Groups() != 1 {
		t.Fatalf("Groups() = %d, want 1", c.Groups())
	}
}

// TestRackStatsPublicSurface drives a small multi-switch rack through
// a crash + replacement via the public API and checks the RackStats
// view: shard shapes, switch routing, independent epochs, and the
// agreement bill scoped to the replaced switch's own groups.
func TestRackStatsPublicSurface(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Switches() != 2 {
		t.Fatalf("Switches() = %d", c.Switches())
	}
	rs := c.RackStats()
	if len(rs.Switches) != 2 {
		t.Fatalf("RackStats has %d switches", len(rs.Switches))
	}
	if n := rs.Switches[0].OwnedSlots + rs.Switches[1].OwnedSlots; n != NumSlots {
		t.Fatalf("owned slots sum to %d, want %d", n, NumSlots)
	}
	for slot := 0; slot < NumSlots; slot++ {
		sw := c.SwitchOf(slot)
		if sw != 0 && sw != 1 {
			t.Fatalf("slot %d on switch %d", slot, sw)
		}
	}
	for g := 0; g < 4; g++ {
		if sw := c.SwitchOfGroup(g); sw != g/2 {
			t.Fatalf("group %d hosted on switch %d, want %d", g, sw, g/2)
		}
	}

	cl := c.Client()
	if err := cl.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashSwitch(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashSwitch(9); err == nil {
		t.Fatal("CrashSwitch(9) accepted an out-of-range switch")
	}
	if err := c.ReactivateSwitch(9); err == nil {
		t.Fatal("ReactivateSwitch(9) accepted an out-of-range switch")
	}
	c.AdvanceTime(time.Millisecond)
	if err := c.ReactivateSwitch(1); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(10 * time.Millisecond)

	rs = c.RackStats()
	if rs.Switches[0].Epoch != 1 || rs.Switches[1].Epoch != 2 {
		t.Fatalf("epochs = %d, %d; want 1, 2 (independent domains)",
			rs.Switches[0].Epoch, rs.Switches[1].Epoch)
	}
	if rs.Switches[1].Replacements != 1 {
		t.Fatalf("replacements = %d", rs.Switches[1].Replacements)
	}
	// 2 groups × 3 live replicas on switch 1: 6 revokes + 6 acks.
	if rs.Switches[1].AgreementAcks != 6 || rs.Switches[1].AgreementMsgs != 12 {
		t.Fatalf("agreement bill = %d msgs / %d acks, want 12 / 6",
			rs.Switches[1].AgreementMsgs, rs.Switches[1].AgreementAcks)
	}
	if rs.Switches[0].AgreementMsgs != 0 {
		t.Fatal("replacing switch 1 billed switch 0")
	}
	if rs.Switches[1].LastAgreementLatency <= 0 {
		t.Fatal("agreement latency not recorded")
	}
	if v, ok, err := cl.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after replacement = %q %v %v", v, ok, err)
	}
}
