// Table-driven coverage for the public Config surface plus a smoke
// test that a short Run populates every Report and SwitchStats field.
package harmonia

import (
	"fmt"
	"testing"
	"time"
)

func TestConfigValidationTable(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"defaults", Config{}, false},
		{"chain harmonia", Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true}, false},
		{"vr pair", Config{Protocol: ViewstampedReplication, Replicas: 2}, false},
		{"sharded", Config{Protocol: ChainReplication, Groups: 4, UseHarmonia: true}, false},
		{"max groups", Config{Protocol: ChainReplication, Groups: MaxGroups}, false},
		{"protocol below range", Config{Protocol: Protocol(-1)}, true},
		{"protocol above range", Config{Protocol: Protocol(99)}, true},
		{"craq with harmonia", Config{Protocol: CRAQ, UseHarmonia: true}, true},
		{"negative replicas", Config{Replicas: -1}, true},
		{"vr singleton", Config{Protocol: ViewstampedReplication, Replicas: 1}, true},
		{"negative stages", Config{Stages: -1}, true},
		{"negative slots", Config{SlotsPerStage: -5}, true},
		{"negative groups", Config{Groups: -1}, true},
		{"too many groups", Config{Groups: MaxGroups + 1}, true},
		{"multi-switch", Config{Protocol: ChainReplication, Groups: 4, Switches: 2, UseHarmonia: true}, false},
		{"max switches", Config{Protocol: ChainReplication, Groups: MaxSwitches, Switches: MaxSwitches}, false},
		{"negative switches", Config{Switches: -1}, true},
		{"too many switches", Config{Groups: 16, Switches: MaxSwitches + 1}, true},
		{"more switches than groups", Config{Groups: 2, Switches: 4}, true},
		{"switches without groups", Config{Switches: 4}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err != nil) != tc.wantErr {
				t.Fatalf("New(%+v) err = %v, wantErr %v", tc.cfg, err, tc.wantErr)
			}
		})
	}
}

func TestReportAndSwitchStatsPopulated(t *testing.T) {
	c, err := New(Config{Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run(LoadSpec{
		Clients: 32, Duration: 15 * time.Millisecond, Warmup: 2 * time.Millisecond,
		WriteRatio: 0.1, Keys: 2000,
	})
	if rep.Ops == 0 || rep.Reads == 0 || rep.Writes == 0 {
		t.Fatalf("counts empty: %+v", rep)
	}
	if rep.Ops != rep.Reads+rep.Writes {
		t.Fatalf("ops %d != reads %d + writes %d", rep.Ops, rep.Reads, rep.Writes)
	}
	if rep.Throughput <= 0 || rep.ReadThroughput <= 0 || rep.WriteThroughput <= 0 {
		t.Fatalf("throughputs empty: %+v", rep)
	}
	if rep.MeanLatency <= 0 || rep.P50Latency <= 0 || rep.P99Latency < rep.P50Latency {
		t.Fatalf("latency stats inconsistent: %+v", rep)
	}
	if len(rep.GroupOps) != 1 || rep.GroupOps[0] != rep.Ops {
		t.Fatalf("single-group GroupOps wrong: %v vs ops %d", rep.GroupOps, rep.Ops)
	}
	st := c.SwitchStats()
	if st.Writes == 0 || st.FastReads == 0 || st.Completions == 0 {
		t.Fatalf("switch stats empty: %+v", st)
	}
	if st.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch)
	}
	if c.Groups() != 1 {
		t.Fatalf("Groups() = %d, want 1", c.Groups())
	}
}

// TestRackStatsPublicSurface drives a small multi-switch rack through
// a crash + replacement via the public API and checks the RackStats
// view: shard shapes, switch routing, independent epochs, and the
// agreement bill scoped to the replaced switch's own groups.
func TestRackStatsPublicSurface(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Groups: 4, Switches: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Switches() != 2 {
		t.Fatalf("Switches() = %d", c.Switches())
	}
	rs := c.RackStats()
	if len(rs.Switches) != 2 {
		t.Fatalf("RackStats has %d switches", len(rs.Switches))
	}
	if n := rs.Switches[0].OwnedSlots + rs.Switches[1].OwnedSlots; n != NumSlots {
		t.Fatalf("owned slots sum to %d, want %d", n, NumSlots)
	}
	for slot := 0; slot < NumSlots; slot++ {
		sw := c.SwitchOf(slot)
		if sw != 0 && sw != 1 {
			t.Fatalf("slot %d on switch %d", slot, sw)
		}
	}
	for g := 0; g < 4; g++ {
		if sw := c.SwitchOfGroup(g); sw != g/2 {
			t.Fatalf("group %d hosted on switch %d, want %d", g, sw, g/2)
		}
	}

	cl := c.Client()
	if err := cl.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashSwitch(1); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashSwitch(9); err == nil {
		t.Fatal("CrashSwitch(9) accepted an out-of-range switch")
	}
	if err := c.ReactivateSwitch(9); err == nil {
		t.Fatal("ReactivateSwitch(9) accepted an out-of-range switch")
	}
	c.AdvanceTime(time.Millisecond)
	if err := c.ReactivateSwitch(1); err != nil {
		t.Fatal(err)
	}
	c.AdvanceTime(10 * time.Millisecond)

	rs = c.RackStats()
	if rs.Switches[0].Epoch != 1 || rs.Switches[1].Epoch != 2 {
		t.Fatalf("epochs = %d, %d; want 1, 2 (independent domains)",
			rs.Switches[0].Epoch, rs.Switches[1].Epoch)
	}
	if rs.Switches[1].Replacements != 1 {
		t.Fatalf("replacements = %d", rs.Switches[1].Replacements)
	}
	// 2 groups × 3 live replicas on switch 1: 6 revokes + 6 acks.
	if rs.Switches[1].AgreementAcks != 6 || rs.Switches[1].AgreementMsgs != 12 {
		t.Fatalf("agreement bill = %d msgs / %d acks, want 12 / 6",
			rs.Switches[1].AgreementMsgs, rs.Switches[1].AgreementAcks)
	}
	if rs.Switches[0].AgreementMsgs != 0 {
		t.Fatal("replacing switch 1 billed switch 0")
	}
	if rs.Switches[1].LastAgreementLatency <= 0 {
		t.Fatal("agreement latency not recorded")
	}
	if v, ok, err := cl.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after replacement = %q %v %v", v, ok, err)
	}
}

func TestGroupSpecConfigValidation(t *testing.T) {
	cr7 := GroupSpec{Protocol: ChainReplication, Replicas: 7}
	np3 := GroupSpec{Protocol: NOPaxos, Replicas: 3}
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"hetero pair", Config{UseHarmonia: true, GroupSpecs: []GroupSpec{cr7, np3}}, false},
		{"craq group in harmonia cluster", Config{UseHarmonia: true,
			GroupSpecs: []GroupSpec{cr7, {Protocol: CRAQ, Replicas: 3}}}, false},
		{"groups agrees with specs", Config{Groups: 2, GroupSpecs: []GroupSpec{cr7, np3}}, false},
		{"groups disagrees with specs", Config{Groups: 3, GroupSpecs: []GroupSpec{cr7, np3}}, true},
		{"spec protocol below range", Config{GroupSpecs: []GroupSpec{{Protocol: Protocol(-1)}}}, true},
		{"spec protocol above range", Config{GroupSpecs: []GroupSpec{{Protocol: Protocol(9)}}}, true},
		{"spec negative replicas", Config{GroupSpecs: []GroupSpec{{Protocol: ChainReplication, Replicas: -2}}}, true},
		{"spec vr singleton", Config{GroupSpecs: []GroupSpec{{Protocol: ViewstampedReplication, Replicas: 1}}}, true},
		{"spec vr inherits singleton default", Config{Replicas: 1,
			GroupSpecs: []GroupSpec{{Protocol: ViewstampedReplication}}}, true},
		{"spec negative weight", Config{GroupSpecs: []GroupSpec{{Protocol: ChainReplication, Weight: -1}}}, true},
		{"explicit weights", Config{GroupSpecs: []GroupSpec{
			{Protocol: ChainReplication, Weight: 5}, {Protocol: ChainReplication, Weight: 1}}}, false},
		// Derived weights are absolute service rates; explicit ones are
		// user-scale ratios. Half-specified weights would compare the
		// two scales, so the mixture is rejected.
		{"mixed explicit and derived weights", Config{GroupSpecs: []GroupSpec{
			{Protocol: ChainReplication, Replicas: 7, Weight: 5}, {Protocol: NOPaxos, Replicas: 3}}}, true},
		{"weighted multi-switch", Config{UseHarmonia: true, Switches: 2,
			GroupSpecs: []GroupSpec{cr7, np3, np3}}, false},
		{"more switches than specs", Config{Switches: 3, GroupSpecs: []GroupSpec{cr7, np3}}, true},
		// The cluster-wide CRAQ+Harmonia rejection applies to uniform
		// clusters only; per-group CRAQ just runs unassisted.
		{"uniform craq harmonia still rejected", Config{Protocol: CRAQ, UseHarmonia: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.cfg)
			if tc.wantErr && err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
			if !tc.wantErr && err != nil {
				t.Fatalf("config %+v rejected: %v", tc.cfg, err)
			}
			if err == nil && c.Groups() <= 0 {
				t.Fatal("no groups assembled")
			}
		})
	}
}

func TestGroupSpecEffectiveSpecsAndWeights(t *testing.T) {
	c, err := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: ChainReplication, Replicas: 7},
			{Protocol: NOPaxos}, // inherits Replicas default 3
			{Protocol: CRAQ, Replicas: 3},
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	specs := c.GroupSpecs()
	if len(specs) != 3 {
		t.Fatalf("GroupSpecs() len = %d", len(specs))
	}
	if specs[0].Protocol != ChainReplication || specs[0].Replicas != 7 {
		t.Fatalf("spec 0 = %+v", specs[0])
	}
	if specs[1].Protocol != NOPaxos || specs[1].Replicas != 3 {
		t.Fatalf("spec 1 did not inherit the default size: %+v", specs[1])
	}
	w := c.GroupWeights()
	if len(w) != 3 || !(w[0] > w[1]) {
		t.Fatalf("weights %v do not favor the 7-replica group", w)
	}
	for _, x := range w {
		if !(x > 0) {
			t.Fatalf("non-positive derived weight in %v", w)
		}
	}
	// A uniform cluster reports uniform specs.
	u, err := New(Config{Protocol: ChainReplication, Groups: 2, UseHarmonia: true})
	if err != nil {
		t.Fatalf("New uniform: %v", err)
	}
	us := u.GroupSpecs()
	if us[0] != us[1] {
		t.Fatalf("uniform cluster reports unequal specs: %+v", us)
	}
}

func TestGroupSpecHeteroEndToEnd(t *testing.T) {
	c, err := New(Config{
		UseHarmonia: true,
		GroupSpecs: []GroupSpec{
			{Protocol: ChainReplication, Replicas: 7},
			{Protocol: NOPaxos, Replicas: 3},
		},
		RecordHistory: true, Seed: 7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cl := c.Client()
	seen := make(map[int]bool)
	for i := 0; i < 48; i++ {
		key := fmt.Sprintf("user:%03d", i)
		if err := cl.Set(key, nil); err != nil {
			t.Fatalf("Set: %v", err)
		}
		if _, ok, err := cl.Get(key); err != nil || !ok {
			t.Fatalf("Get(%s): %v %v", key, ok, err)
		}
		seen[c.GroupOf(key)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("groups hit: %v", seen)
	}
	// Per-group failure-injection bounds follow the specs.
	if err := c.CrashReplicaInGroup(1, 5); err == nil {
		t.Fatal("replica 5 of the 3-replica group accepted")
	}
	if err := c.CrashReplicaInGroup(0, 5); err != nil {
		t.Fatalf("crash replica 5 of the 7-replica group: %v", err)
	}
	for g := 0; g < c.Groups(); g++ {
		if res := c.CheckLinearizabilityGroup(g); !res.Decided || !res.Ok {
			t.Fatalf("group %d: %+v", g, res)
		}
	}
}
