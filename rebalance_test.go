// Tests for the slot routing table and online group rebalancing: the
// switch front-end owns a slot → group table, and MigrateSlot moves a
// slot between replica groups while the cluster serves load.
package harmonia

import (
	"testing"
	"time"
)

func TestSlotTableDefaultsMatchGroupOf(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := c.SlotTable()
	if len(tab) != NumSlots {
		t.Fatalf("slot table has %d entries, want %d", len(tab), NumSlots)
	}
	for _, key := range []string{"alpha", "bravo", "charlie", "obj00000042"} {
		slot := c.SlotOfKey(key)
		if slot < 0 || slot >= NumSlots {
			t.Fatalf("SlotOfKey(%q) = %d out of range", key, slot)
		}
		if got := c.GroupOf(key); got != tab[slot] {
			t.Fatalf("GroupOf(%q) = %d but slot %d routes to %d", key, got, slot, tab[slot])
		}
	}
}

func TestMigrateSlotPublicAPI(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	const key = "hot-customer"
	if err := cl.Set(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	slot := c.SlotOfKey(key)
	from := c.GroupOf(key)
	to := (from + 1) % c.Groups()

	if err := c.MigrateSlot(slot, to); err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	if got := c.SlotTable()[slot]; got != to {
		t.Fatalf("slot %d routes to %d after migration, want %d", slot, got, to)
	}
	if got := c.GroupOf(key); got != to {
		t.Fatalf("GroupOf(%q) = %d after migration, want %d", key, got, to)
	}
	// Data survived the move, and writes keep working on the new owner.
	if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get after migration = %q %v %v", v, ok, err)
	}
	if err := cl.Set(key, []byte("v2")); err != nil {
		t.Fatalf("Set after migration: %v", err)
	}
	if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("second Get = %q %v %v", v, ok, err)
	}

	// Validation errors surface.
	if err := c.MigrateSlot(-1, 0); err == nil {
		t.Fatal("negative slot accepted")
	}
	if err := c.MigrateSlot(0, c.Groups()); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestMigrateSlotsAndSwapPublicAPI(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 4, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	keys := []string{"batch:a", "batch:b", "batch:c", "batch:d"}
	var slots []int
	seen := map[int]bool{}
	for _, k := range keys {
		if err := cl.Set(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
		if s := c.SlotOfKey(k); !seen[s] {
			seen[s] = true
			slots = append(slots, s)
		}
	}
	// Batch move (mixed current owners) onto group 3.
	if err := c.MigrateSlots(slots, 3); err != nil {
		t.Fatalf("MigrateSlots: %v", err)
	}
	for _, k := range keys {
		if g := c.GroupOf(k); g != 3 {
			t.Fatalf("GroupOf(%q) = %d after batch move, want 3", k, g)
		}
		if v, ok, err := cl.Get(k); err != nil || !ok || string(v) != "v-"+k {
			t.Fatalf("Get(%q) = %q %v %v", k, v, ok, err)
		}
	}
	// Swap the moved set against a group-0 slot set of equal size.
	var g0 []int
	for s := 0; s < NumSlots && len(g0) < len(slots); s++ {
		if c.SlotTable()[s] == 0 {
			g0 = append(g0, s)
		}
	}
	if err := c.SwapSlots(slots, g0); err != nil {
		t.Fatalf("SwapSlots: %v", err)
	}
	for _, k := range keys {
		if g := c.GroupOf(k); g != 0 {
			t.Fatalf("GroupOf(%q) = %d after swap, want 0", k, g)
		}
		if v, ok, err := cl.Get(k); err != nil || !ok || string(v) != "v-"+k {
			t.Fatalf("Get(%q) after swap = %q %v %v", k, v, ok, err)
		}
	}
	for _, s := range g0 {
		if got := c.SlotTable()[s]; got != 3 {
			t.Fatalf("counterpart slot %d routed to %d after swap, want 3", s, got)
		}
	}
}

func TestSlotHeatPublicAPI(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	const key = "hot:key"
	for i := 0; i < 5; i++ {
		if err := cl.Set(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	heat := c.SlotHeat()
	if len(heat) != NumSlots {
		t.Fatalf("SlotHeat has %d entries, want %d", len(heat), NumSlots)
	}
	h := heat[c.SlotOfKey(key)]
	if h.Writes < 5 || h.Reads < 5 {
		t.Fatalf("slot heat %+v after 5 writes + 5 reads", h)
	}
	if h.Total() != h.Reads+h.Writes {
		t.Fatalf("Total() = %d, want %d", h.Total(), h.Reads+h.Writes)
	}
	// Without AutoRebalance nothing decays and nothing moves.
	if c.Rebalances() != 0 {
		t.Fatalf("Rebalances = %d without AutoRebalance", c.Rebalances())
	}
}

func TestAutoRebalanceReportAndValidation(t *testing.T) {
	// Invalid policies are rejected up front.
	bad := []Config{
		{Protocol: ChainReplication, Replicas: 3, Groups: 2, RebalancePolicy: RebalancePolicy{Threshold: -1}},
		{Protocol: ChainReplication, Replicas: 3, Groups: 2, RebalancePolicy: RebalancePolicy{Interval: -time.Second}},
		{Protocol: ChainReplication, Replicas: 3, Groups: 2, RebalancePolicy: RebalancePolicy{MaxSlotsPerRound: -4}},
		{Protocol: ChainReplication, Replicas: 3, Groups: 2, RebalancePolicy: RebalancePolicy{Threshold: 1.2, Hysteresis: 1.2}},
		// Threshold left to its 1.5 default: a hysteresis at or above
		// it must still be rejected.
		{Protocol: ChainReplication, Replicas: 3, Groups: 2, RebalancePolicy: RebalancePolicy{Hysteresis: 1.6}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad policy %d accepted", i)
		}
	}

	// A skewed zipf load on a 4-group cluster with the rebalancer on:
	// the report window sees moves, and the loop's work shows up in
	// Rebalances.
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 4,
		AutoRebalance: true, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Skew the placement: everything onto group 0.
	all := make([]int, NumSlots)
	for s := range all {
		all[s] = s
	}
	if err := c.MigrateSlots(all, 0); err != nil {
		t.Fatal(err)
	}
	// Zero warmup: the loop acts within a couple of policy intervals,
	// and the moves must land inside the measured window to show up in
	// Report.Rebalances.
	rep := c.Run(LoadSpec{
		Clients: 64, Duration: 14 * time.Millisecond,
		WriteRatio: 0.05, Keys: 64, Dist: Zipf12,
	})
	if rep.Rebalances == 0 || c.Rebalances() == 0 {
		t.Fatalf("rebalancer idle on a fully-skewed placement (report %d, total %d)",
			rep.Rebalances, c.Rebalances())
	}
	occ := make([]int, c.Groups())
	for _, g := range c.SlotTable() {
		occ[g]++
	}
	if occ[0] == NumSlots {
		t.Fatal("slot table unchanged despite reported rebalances")
	}
}

func TestSwitchStatsCompletePlumbing(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(LoadSpec{
		Clients: 16, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
		WriteRatio: 0.2, Keys: 200,
	})
	var sum SwitchStats
	for g := 0; g < c.Groups(); g++ {
		st := c.GroupSwitchStats(g)
		sum.StaleCompletion += st.StaleCompletion
		sum.LazyCleanups += st.LazyCleanups
		sum.ForwardedReads += st.ForwardedReads
		sum.SweptStale += st.SweptStale
	}
	agg := c.SwitchStats()
	if agg.StaleCompletion != sum.StaleCompletion || agg.LazyCleanups != sum.LazyCleanups ||
		agg.ForwardedReads != sum.ForwardedReads || agg.SweptStale != sum.SweptStale {
		t.Fatalf("aggregate %+v does not sum the groups %+v", agg, sum)
	}
	if agg.FrozenDrops != 0 {
		t.Fatalf("FrozenDrops = %d with no migration", agg.FrozenDrops)
	}
}

func TestReportDroppedDistinctFromRetries(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Stages: 1, SlotsPerStage: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run(LoadSpec{
		Clients: 8, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
		WriteRatio: 1, Keys: 64,
	})
	st := c.SwitchStats()
	if st.WritesDropped == 0 {
		t.Fatal("one-slot dirty set dropped nothing")
	}
	if rep.Dropped == 0 {
		t.Fatal("Report.Dropped empty despite switch drops")
	}
	if rep.Writes == 0 {
		t.Fatal("no writes completed under drops")
	}
}
