// Tests for the slot routing table and online group rebalancing: the
// switch front-end owns a slot → group table, and MigrateSlot moves a
// slot between replica groups while the cluster serves load.
package harmonia

import (
	"testing"
	"time"
)

func TestSlotTableDefaultsMatchGroupOf(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := c.SlotTable()
	if len(tab) != NumSlots {
		t.Fatalf("slot table has %d entries, want %d", len(tab), NumSlots)
	}
	for _, key := range []string{"alpha", "bravo", "charlie", "obj00000042"} {
		slot := c.SlotOfKey(key)
		if slot < 0 || slot >= NumSlots {
			t.Fatalf("SlotOfKey(%q) = %d out of range", key, slot)
		}
		if got := c.GroupOf(key); got != tab[slot] {
			t.Fatalf("GroupOf(%q) = %d but slot %d routes to %d", key, got, slot, tab[slot])
		}
	}
}

func TestMigrateSlotPublicAPI(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := c.Client()
	const key = "hot-customer"
	if err := cl.Set(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	slot := c.SlotOfKey(key)
	from := c.GroupOf(key)
	to := (from + 1) % c.Groups()

	if err := c.MigrateSlot(slot, to); err != nil {
		t.Fatalf("MigrateSlot: %v", err)
	}
	if got := c.SlotTable()[slot]; got != to {
		t.Fatalf("slot %d routes to %d after migration, want %d", slot, got, to)
	}
	if got := c.GroupOf(key); got != to {
		t.Fatalf("GroupOf(%q) = %d after migration, want %d", key, got, to)
	}
	// Data survived the move, and writes keep working on the new owner.
	if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get after migration = %q %v %v", v, ok, err)
	}
	if err := cl.Set(key, []byte("v2")); err != nil {
		t.Fatalf("Set after migration: %v", err)
	}
	if v, ok, err := cl.Get(key); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("second Get = %q %v %v", v, ok, err)
	}

	// Validation errors surface.
	if err := c.MigrateSlot(-1, 0); err == nil {
		t.Fatal("negative slot accepted")
	}
	if err := c.MigrateSlot(0, c.Groups()); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestSwitchStatsCompletePlumbing(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true, Groups: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(LoadSpec{
		Clients: 16, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
		WriteRatio: 0.2, Keys: 200,
	})
	var sum SwitchStats
	for g := 0; g < c.Groups(); g++ {
		st := c.GroupSwitchStats(g)
		sum.StaleCompletion += st.StaleCompletion
		sum.LazyCleanups += st.LazyCleanups
		sum.ForwardedReads += st.ForwardedReads
		sum.SweptStale += st.SweptStale
	}
	agg := c.SwitchStats()
	if agg.StaleCompletion != sum.StaleCompletion || agg.LazyCleanups != sum.LazyCleanups ||
		agg.ForwardedReads != sum.ForwardedReads || agg.SweptStale != sum.SweptStale {
		t.Fatalf("aggregate %+v does not sum the groups %+v", agg, sum)
	}
	if agg.FrozenDrops != 0 {
		t.Fatalf("FrozenDrops = %d with no migration", agg.FrozenDrops)
	}
}

func TestReportDroppedDistinctFromRetries(t *testing.T) {
	c, err := New(Config{
		Protocol: ChainReplication, Replicas: 3, UseHarmonia: true,
		Stages: 1, SlotsPerStage: 1, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Run(LoadSpec{
		Clients: 8, Duration: 10 * time.Millisecond, Warmup: time.Millisecond,
		WriteRatio: 1, Keys: 64,
	})
	st := c.SwitchStats()
	if st.WritesDropped == 0 {
		t.Fatal("one-slot dirty set dropped nothing")
	}
	if rep.Dropped == 0 {
		t.Fatal("Report.Dropped empty despite switch drops")
	}
	if rep.Writes == 0 {
		t.Fatal("no writes completed under drops")
	}
}
